// Package stats provides the summary statistics, distribution functions and
// accumulators used by the fluid-model experiments and the simulators:
// streaming moments, confidence intervals, time-weighted averages,
// histograms, and exact PMFs for the binomial correlation model.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming sample moments (Welford's algorithm) so that
// mean and variance are numerically stable even for long simulations.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll records every value in xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 when n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean.
func (s *Summary) CI95() float64 { return 1.959963984540054 * s.StdErr() }

// String formats the summary for experiment logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g ±%.3g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.CI95(), s.StdDev(), s.min, s.max)
}

// Merge combines another summary into s (parallel reduction; Chan et al.).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	mean := s.mean + delta*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// State exposes the accumulator's full internal state — observation count,
// running mean, sum of squared deviations (Welford's M2), and extrema — so
// a Summary can cross a process or serialization boundary losslessly.
func (s *Summary) State() (n int, mean, m2, min, max float64) {
	return s.n, s.mean, s.m2, s.min, s.max
}

// SummaryFromState rebuilds a Summary from a State snapshot. The round
// trip SummaryFromState(s.State()) is exact: every derived statistic
// (variance, CI, extrema) is bit-identical to the original's.
func SummaryFromState(n int, mean, m2, min, max float64) Summary {
	return Summary{n: n, mean: mean, m2: m2, min: min, max: max}
}

// TimeWeighted accumulates the time-average of a piecewise-constant signal,
// e.g. the number of downloaders in a swarm over simulated time.
type TimeWeighted struct {
	lastT   float64
	lastV   float64
	area    float64
	started bool
}

// Observe records that the signal took value v at time t and holds it until
// the next call. Times must be non-decreasing.
func (w *TimeWeighted) Observe(t, v float64) {
	if w.started {
		if t < w.lastT {
			panic("stats: TimeWeighted times must be non-decreasing")
		}
		w.area += w.lastV * (t - w.lastT)
	} else {
		w.started = true
	}
	w.lastT, w.lastV = t, v
}

// MeanUntil returns the time average of the signal over [t0, t], where t0 is
// the first observation time. The signal is held at its last value up to t.
func (w *TimeWeighted) MeanUntil(t float64) float64 {
	if !w.started || t <= 0 {
		return 0
	}
	area := w.area + w.lastV*(t-w.lastT)
	return area / t
}

// Histogram is a fixed-width bucket histogram over [lo, hi); out-of-range
// observations are counted in the under/over bins.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Under   int
	Over    int
	total   int
}

// NewHistogram returns a histogram with n equal buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if !(hi > lo) || n <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Buckets)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Buckets) { // guard against FP rounding at the top edge
			i--
		}
		h.Buckets[i]++
	}
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// Quantile returns an approximate q-quantile (0 <= q <= 1) from the bucket
// midpoints, ignoring out-of-range observations.
func (h *Histogram) Quantile(q float64) float64 {
	in := h.total - h.Under - h.Over
	if in == 0 {
		return math.NaN()
	}
	target := q * float64(in)
	cum := 0.0
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		cum += float64(c)
		if cum >= target {
			return h.Lo + (float64(i)+0.5)*width
		}
	}
	return h.Hi - 0.5*width
}

// Mean returns the sample mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the sample median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return 0.5 * (cp[n/2-1] + cp[n/2])
}

// BinomialCoeff returns C(n, k) as a float64, computed multiplicatively to
// avoid factorial overflow. Returns 0 for k < 0 or k > n.
func BinomialCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	// Work in logs for robustness at large n.
	logPMF := logBinomialCoeff(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(logPMF)
}

func logBinomialCoeff(n, k int) float64 {
	return logFactorial(n) - logFactorial(k) - logFactorial(n-k)
}

// logFactorial returns ln(n!) using exact accumulation for small n and
// Stirling's series beyond.
func logFactorial(n int) float64 {
	if n < 2 {
		return 0
	}
	if n < 256 {
		s := 0.0
		for i := 2; i <= n; i++ {
			s += math.Log(float64(i))
		}
		return s
	}
	x := float64(n)
	return x*math.Log(x) - x + 0.5*math.Log(2*math.Pi*x) +
		1/(12*x) - 1/(360*x*x*x)
}

// PoissonPMF returns P[X = k] for X ~ Poisson(mean).
func PoissonPMF(k int, mean float64) float64 {
	if k < 0 || mean < 0 {
		return 0
	}
	if mean == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(float64(k)*math.Log(mean) - mean - logFactorial(k))
}

// RelErr returns |got-want| / max(|want|, floor): a relative error with an
// absolute floor to keep comparisons meaningful near zero.
func RelErr(got, want, floor float64) float64 {
	d := math.Abs(got - want)
	scale := math.Abs(want)
	if scale < floor {
		scale = floor
	}
	return d / scale
}
