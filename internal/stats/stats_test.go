package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mfdl/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if !almost(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Variance() != 0 {
		t.Fatalf("single-sample summary wrong: %v", s.String())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	src := rng.New(1)
	f := func(naRaw, nbRaw uint8) bool {
		na, nb := int(naRaw%50)+1, int(nbRaw%50)+1
		var all, a, b Summary
		for i := 0; i < na; i++ {
			x := src.Float64()*100 - 50
			all.Add(x)
			a.Add(x)
		}
		for i := 0; i < nb; i++ {
			x := src.Float64()*100 - 50
			all.Add(x)
			b.Add(x)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Variance(), all.Variance(), 1e-9) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeWithEmpty(t *testing.T) {
	var a, b Summary
	a.AddAll([]float64{1, 2, 3})
	mean := a.Mean()
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 3 || a.Mean() != mean {
		t.Fatal("merge with empty changed summary")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 3 || b.Mean() != mean {
		t.Fatal("merge into empty did not copy")
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 10) // 10 on [0,5)
	w.Observe(5, 20) // 20 on [5,10)
	got := w.MeanUntil(10)
	if !almost(got, 15, 1e-12) {
		t.Fatalf("time-weighted mean = %v, want 15", got)
	}
}

func TestTimeWeightedHoldsLastValue(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 4)
	if got := w.MeanUntil(8); !almost(got, 4, 1e-12) {
		t.Fatalf("mean = %v, want 4", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var w TimeWeighted
	if w.MeanUntil(10) != 0 {
		t.Fatal("empty time-weighted mean should be 0")
	}
}

func TestTimeWeightedPanicsOnRegression(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on decreasing time")
		}
	}()
	var w TimeWeighted
	w.Observe(5, 1)
	w.Observe(4, 1)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.Total() != 12 || h.Under != 1 || h.Over != 1 {
		t.Fatalf("total/under/over = %d/%d/%d", h.Total(), h.Under, h.Over)
	}
	for i, c := range h.Buckets {
		if c != 1 {
			t.Fatalf("bucket %d count %d, want 1", i, c)
		}
	}
}

func TestHistogramTopEdge(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(math.Nextafter(1, 0)) // just below hi must land in the last bucket
	if h.Buckets[2] != 1 {
		t.Fatalf("top-edge observation lost: %v", h.Buckets)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median estimate %v", med)
	}
	if !math.IsNaN(NewHistogram(0, 1, 1).Quantile(0.5)) {
		t.Fatal("quantile of empty histogram should be NaN")
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty slices should yield 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almost(got, 2.5, 1e-12) {
		t.Fatalf("mean %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); !almost(got, 2.5, 1e-12) {
		t.Fatalf("even median %v", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestBinomialCoeff(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{10, 7, 120}, {52, 5, 2598960}, {5, -1, 0}, {5, 6, 0},
	}
	for _, c := range cases {
		if got := BinomialCoeff(c.n, c.k); !almost(got, c.want, 1e-6*c.want+1e-9) {
			t.Fatalf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialCoeffSymmetry(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw % 60)
		k := 0
		if n > 0 {
			k = int(kRaw) % (n + 1)
		}
		a, b := BinomialCoeff(n, k), BinomialCoeff(n, n-k)
		return RelErr(a, b, 1e-12) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 10, 100, 300} {
		for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				pm := BinomialPMF(n, k, p)
				if pm < 0 || pm > 1+1e-12 {
					t.Fatalf("PMF out of range: n=%d k=%d p=%v -> %v", n, k, p, pm)
				}
				sum += pm
			}
			if !almost(sum, 1, 1e-9) {
				t.Fatalf("PMF sum n=%d p=%v = %v", n, p, sum)
			}
		}
	}
}

func TestBinomialPMFMatchesCoeffForm(t *testing.T) {
	// For moderate n, PMF must equal C(n,k) p^k (1-p)^(n-k) exactly enough.
	n, p := 10, 0.3
	for k := 0; k <= n; k++ {
		want := BinomialCoeff(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
		if got := BinomialPMF(n, k, p); RelErr(got, want, 1e-15) > 1e-9 {
			t.Fatalf("PMF(%d,%d,%v) = %v, want %v", n, k, p, got, want)
		}
	}
}

func TestPoissonPMF(t *testing.T) {
	if got := PoissonPMF(0, 0); got != 1 {
		t.Fatalf("PoissonPMF(0,0) = %v", got)
	}
	if got := PoissonPMF(3, 0); got != 0 {
		t.Fatalf("PoissonPMF(3,0) = %v", got)
	}
	sum := 0.0
	for k := 0; k < 200; k++ {
		sum += PoissonPMF(k, 12)
	}
	if !almost(sum, 1, 1e-9) {
		t.Fatalf("Poisson PMF sum = %v", sum)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(11, 10, 1e-9); !almost(got, 0.1, 1e-12) {
		t.Fatalf("RelErr = %v", got)
	}
	if got := RelErr(0.5, 0, 1); got != 0.5 {
		t.Fatalf("RelErr with floor = %v", got)
	}
}

func TestLogFactorialStirlingAgreement(t *testing.T) {
	// Exact and Stirling branches must agree near the switchover.
	exact := 0.0
	for i := 2; i <= 300; i++ {
		exact += math.Log(float64(i))
	}
	if got := logFactorial(300); RelErr(got, exact, 1e-12) > 1e-10 {
		t.Fatalf("logFactorial(300) = %v, want %v", got, exact)
	}
}
