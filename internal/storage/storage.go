// Package storage holds a torrent's pieces during transfer: every incoming
// piece is verified against the metainfo's SHA-1 hashes before being
// admitted, per-file completion is tracked through the multi-file piece
// layout, and completed files can be assembled back into byte streams. The
// store is memory-backed — the simulators and the in-process client move
// synthetic content — but hides that behind the same piece/offset geometry
// a disk-backed implementation would use.
package storage

import (
	"crypto/sha1"
	"errors"
	"fmt"
	"sync"

	"mfdl/internal/metainfo"
	"mfdl/internal/wire"
)

// Store is a verified piece store for one torrent. Safe for concurrent use.
type Store struct {
	info *metainfo.Info

	mu     sync.RWMutex
	pieces [][]byte
	have   wire.Bitfield
	ranges []metainfo.PieceRange
}

// New returns an empty store for the torrent.
func New(info *metainfo.Info) (*Store, error) {
	if info == nil {
		return nil, errors.New("storage: nil info")
	}
	if err := info.Validate(); err != nil {
		return nil, err
	}
	return &Store{
		info:   info,
		pieces: make([][]byte, info.NumPieces()),
		have:   wire.NewBitfield(info.NumPieces()),
		ranges: info.FilePieces(),
	}, nil
}

// NewSeeded returns a store pre-filled from the full torrent content.
func NewSeeded(info *metainfo.Info, src metainfo.DataSource) (*Store, error) {
	s, err := New(info)
	if err != nil {
		return nil, err
	}
	total := info.TotalLength()
	for p := 0; p < info.NumPieces(); p++ {
		off := int64(p) * info.PieceLength
		n := info.PieceLength
		if off+n > total {
			n = total - off
		}
		buf := make([]byte, n)
		if err := src.ReadAt(buf, off); err != nil {
			return nil, err
		}
		if err := s.Put(p, buf); err != nil {
			return nil, fmt.Errorf("storage: seeding piece %d: %w", p, err)
		}
	}
	return s, nil
}

// Info returns the torrent metadata.
func (s *Store) Info() *metainfo.Info { return s.info }

// PieceSize returns the byte length of piece p (the last piece is short).
func (s *Store) PieceSize(p int) int64 {
	total := s.info.TotalLength()
	off := int64(p) * s.info.PieceLength
	n := s.info.PieceLength
	if off+n > total {
		n = total - off
	}
	return n
}

// ErrBadHash is returned when a piece fails verification.
var ErrBadHash = errors.New("storage: piece hash mismatch")

// Put verifies and stores piece p. Duplicate puts of the same verified
// piece are idempotent.
func (s *Store) Put(p int, data []byte) error {
	if p < 0 || p >= s.info.NumPieces() {
		return fmt.Errorf("storage: piece %d out of range", p)
	}
	if int64(len(data)) != s.PieceSize(p) {
		return fmt.Errorf("storage: piece %d has %d bytes, want %d", p, len(data), s.PieceSize(p))
	}
	got := sha1.Sum(data)
	want := s.info.Pieces[p*sha1.Size : (p+1)*sha1.Size]
	for i := range got {
		if got[i] != want[i] {
			return ErrBadHash
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pieces[p] == nil {
		s.pieces[p] = append([]byte(nil), data...)
		s.have.Set(p)
	}
	return nil
}

// Get returns a copy of piece p, or an error if missing.
func (s *Store) Get(p int) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if p < 0 || p >= len(s.pieces) || s.pieces[p] == nil {
		return nil, fmt.Errorf("storage: piece %d not held", p)
	}
	return append([]byte(nil), s.pieces[p]...), nil
}

// Block returns length bytes of piece p starting at begin.
func (s *Store) Block(p int, begin, length int64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if p < 0 || p >= len(s.pieces) || s.pieces[p] == nil {
		return nil, fmt.Errorf("storage: piece %d not held", p)
	}
	data := s.pieces[p]
	if begin < 0 || length < 0 || begin+length > int64(len(data)) {
		return nil, fmt.Errorf("storage: block [%d,%d) outside piece of %d bytes", begin, begin+length, len(data))
	}
	return append([]byte(nil), data[begin:begin+length]...), nil
}

// Has reports whether piece p is held.
func (s *Store) Has(p int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.have.Has(p)
}

// Bitfield returns a snapshot of the availability bitmap.
func (s *Store) Bitfield() wire.Bitfield {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.have.Clone()
}

// Count returns the number of held pieces.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.have.Count()
}

// Complete reports whether every piece is held.
func (s *Store) Complete() bool { return s.Count() == s.info.NumPieces() }

// FileComplete reports whether every piece overlapping file f is held.
func (s *Store) FileComplete(f int) bool {
	if f < 0 || f >= len(s.ranges) {
		return false
	}
	r := s.ranges[f]
	s.mu.RLock()
	defer s.mu.RUnlock()
	for p := r.First; p <= r.Last; p++ {
		if !s.have.Has(p) {
			return false
		}
	}
	return true
}

// CompletedFiles returns the number of fully-held files.
func (s *Store) CompletedFiles() int {
	n := 0
	for f := range s.ranges {
		if s.FileComplete(f) {
			n++
		}
	}
	return n
}

// AssembleFile reconstructs file f's bytes from the held pieces.
func (s *Store) AssembleFile(f int) ([]byte, error) {
	if f < 0 || f >= len(s.info.Files) {
		return nil, fmt.Errorf("storage: file %d out of range", f)
	}
	if !s.FileComplete(f) {
		return nil, fmt.Errorf("storage: file %d incomplete", f)
	}
	var offset int64
	for i := 0; i < f; i++ {
		offset += s.info.Files[i].Length
	}
	length := s.info.Files[f].Length
	out := make([]byte, length)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for written := int64(0); written < length; {
		abs := offset + written
		p := int(abs / s.info.PieceLength)
		within := abs % s.info.PieceLength
		piece := s.pieces[p]
		n := copy(out[written:], piece[within:])
		written += int64(n)
	}
	return out, nil
}
