package storage

import (
	"bytes"
	"sync"
	"testing"

	"mfdl/internal/metainfo"
	"mfdl/internal/rng"
)

// buildTorrent returns metadata and content for a 3-file torrent.
func buildTorrent(t *testing.T) (*metainfo.MetaInfo, []byte) {
	t.Helper()
	src := rng.New(9)
	data := make([]byte, 3000)
	for i := range data {
		data[i] = byte(src.Uint32())
	}
	files := []metainfo.FileEntry{
		{Path: "s/a", Length: 1000},
		{Path: "s/b", Length: 700},
		{Path: "s/c", Length: 1300},
	}
	m, err := metainfo.Build("s", "http://t/a", 256, files, metainfo.BytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	return m, data
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil info accepted")
	}
	m, _ := buildTorrent(t)
	bad := m.Info
	bad.PieceLength = 0
	if _, err := New(&bad); err == nil {
		t.Fatal("invalid info accepted")
	}
}

func TestPutGetVerified(t *testing.T) {
	m, data := buildTorrent(t)
	s, err := New(&m.Info)
	if err != nil {
		t.Fatal(err)
	}
	if s.Has(0) || s.Complete() {
		t.Fatal("empty store claims pieces")
	}
	piece0 := data[:256]
	if err := s.Put(0, piece0); err != nil {
		t.Fatal(err)
	}
	if !s.Has(0) || s.Count() != 1 {
		t.Fatal("piece 0 not recorded")
	}
	back, err := s.Get(0)
	if err != nil || !bytes.Equal(back, piece0) {
		t.Fatalf("get: %v", err)
	}
	// Mutating the returned slice must not corrupt the store.
	back[0] ^= 0xFF
	again, _ := s.Get(0)
	if again[0] == back[0] {
		t.Fatal("Get aliases internal storage")
	}
}

func TestPutRejectsCorruption(t *testing.T) {
	m, data := buildTorrent(t)
	s, _ := New(&m.Info)
	bad := append([]byte(nil), data[:256]...)
	bad[10] ^= 1
	if err := s.Put(0, bad); err != ErrBadHash {
		t.Fatalf("corrupted piece: %v", err)
	}
	if err := s.Put(0, data[:100]); err == nil {
		t.Fatal("short piece accepted")
	}
	if err := s.Put(-1, data[:256]); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := s.Put(99, data[:256]); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestLastPieceShort(t *testing.T) {
	m, data := buildTorrent(t)
	s, _ := New(&m.Info)
	last := m.Info.NumPieces() - 1
	want := int64(3000) - int64(last)*256
	if s.PieceSize(last) != want {
		t.Fatalf("last piece size %d, want %d", s.PieceSize(last), want)
	}
	if err := s.Put(last, data[int64(last)*256:]); err != nil {
		t.Fatal(err)
	}
}

func TestNewSeededCompletes(t *testing.T) {
	m, data := buildTorrent(t)
	s, err := NewSeeded(&m.Info, metainfo.BytesSource(data))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Complete() {
		t.Fatal("seeded store incomplete")
	}
	if s.CompletedFiles() != 3 {
		t.Fatalf("completed files %d", s.CompletedFiles())
	}
}

func TestBlockReads(t *testing.T) {
	m, data := buildTorrent(t)
	s, _ := NewSeeded(&m.Info, metainfo.BytesSource(data))
	blk, err := s.Block(1, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blk, data[256+10:256+110]) {
		t.Fatal("block content wrong")
	}
	if _, err := s.Block(1, 200, 100); err == nil {
		t.Fatal("overlong block accepted")
	}
	empty, _ := New(&m.Info)
	if _, err := empty.Block(1, 0, 10); err == nil {
		t.Fatal("block from missing piece accepted")
	}
}

func TestFileCompletionTracking(t *testing.T) {
	m, data := buildTorrent(t)
	s, _ := New(&m.Info)
	// File 0 covers pieces 0..3 (boundary piece 3 shared with file 1).
	for p := 0; p <= 3; p++ {
		end := (p + 1) * 256
		if end > len(data) {
			end = len(data)
		}
		if err := s.Put(p, data[p*256:end]); err != nil {
			t.Fatal(err)
		}
	}
	if !s.FileComplete(0) {
		t.Fatal("file 0 should be complete")
	}
	if s.FileComplete(1) || s.FileComplete(2) {
		t.Fatal("other files should be incomplete")
	}
	if s.CompletedFiles() != 1 {
		t.Fatalf("completed files %d", s.CompletedFiles())
	}
	if s.FileComplete(-1) || s.FileComplete(3) {
		t.Fatal("out-of-range file complete")
	}
}

func TestAssembleFile(t *testing.T) {
	m, data := buildTorrent(t)
	s, _ := NewSeeded(&m.Info, metainfo.BytesSource(data))
	a, err := s.AssembleFile(0)
	if err != nil || !bytes.Equal(a, data[:1000]) {
		t.Fatalf("file 0: %v", err)
	}
	b, err := s.AssembleFile(1)
	if err != nil || !bytes.Equal(b, data[1000:1700]) {
		t.Fatalf("file 1: %v", err)
	}
	c, err := s.AssembleFile(2)
	if err != nil || !bytes.Equal(c, data[1700:]) {
		t.Fatalf("file 2: %v", err)
	}
	empty, _ := New(&m.Info)
	if _, err := empty.AssembleFile(0); err == nil {
		t.Fatal("assembled incomplete file")
	}
	if _, err := s.AssembleFile(9); err == nil {
		t.Fatal("assembled out-of-range file")
	}
}

func TestConcurrentPuts(t *testing.T) {
	m, data := buildTorrent(t)
	s, _ := New(&m.Info)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < m.Info.NumPieces(); p++ {
				end := (p + 1) * 256
				if end > len(data) {
					end = len(data)
				}
				_ = s.Put(p, data[p*256:end])
				_ = s.Has(p)
				_ = s.Bitfield()
			}
		}()
	}
	wg.Wait()
	if !s.Complete() {
		t.Fatal("concurrent puts lost pieces")
	}
}

func BenchmarkPutVerified(b *testing.B) {
	src := rng.New(9)
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(src.Uint32())
	}
	m, err := metainfo.Build("b", "http://t/a", 1<<14,
		[]metainfo.FileEntry{{Path: "b/x", Length: int64(len(data))}},
		metainfo.BytesSource(data))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := New(&m.Info)
		p := i % m.Info.NumPieces()
		if err := s.Put(p, data[p<<14:(p+1)<<14]); err != nil {
			b.Fatal(err)
		}
	}
}
