package bencode

import (
	"reflect"
	"testing"
)

// FuzzUnmarshal checks that the decoder never panics on arbitrary input,
// and that anything it accepts re-encodes canonically to the same bytes
// (the invariant the info-hash depends on).
func FuzzUnmarshal(f *testing.F) {
	seeds := []string{
		"4:spam", "i3e", "i-3e", "le", "de",
		"l4:spam4:eggse", "d3:cow3:moo4:spam4:eggse",
		"d8:announce23:http://tracker/announce4:infod4:name6:seasonee",
		"i03e", "5:spam", "d3:cow", "", "x", "lllllleeeeee",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Unmarshal(data)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		re, err := Marshal(v)
		if err != nil {
			t.Fatalf("decoded value failed to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("accepted non-canonical input %q (re-encodes to %q)", data, re)
		}
		v2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-encoded form rejected: %v", err)
		}
		if !reflect.DeepEqual(v, v2) {
			t.Fatal("round trip changed the value")
		}
	})
}
