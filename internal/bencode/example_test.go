package bencode_test

import (
	"fmt"
	"log"

	"mfdl/internal/bencode"
)

// Dictionaries encode with sorted keys, as the info-hash requires.
func ExampleMarshal() {
	data, err := bencode.Marshal(map[string]any{
		"announce": "http://tracker/announce",
		"info":     map[string]any{"name": "season", "piece length": int64(262144)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	// Output:
	// d8:announce23:http://tracker/announce4:infod4:name6:season12:piece lengthi262144eee
}

func ExampleUnmarshal() {
	v, err := bencode.Unmarshal([]byte("d8:completei3e8:intervali1800ee"))
	if err != nil {
		log.Fatal(err)
	}
	d := v.(map[string]any)
	fmt.Println(d["interval"], d["complete"])
	// Output:
	// 1800 3
}
