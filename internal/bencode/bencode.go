// Package bencode implements the bencoding format of BEP-3, the wire
// encoding of BitTorrent metadata and tracker responses. It is the first
// layer of the server–torrent architecture of the paper's Section 3.1: the
// .torrent files the web server indexes and the responses the tracker
// serves are both bencoded.
//
// The data model is the canonical one:
//
//	string  -> Go string (binary-safe)
//	integer -> int64
//	list    -> []any
//	dict    -> map[string]any (encoded with sorted keys, as the spec and
//	           info-hash stability require)
//
// Decoding is strict: leading zeros, negative zero, unsorted or duplicate
// dictionary keys, and trailing garbage are rejected, because the SHA-1
// info-hash of a torrent is defined over the exact canonical encoding.
package bencode

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Marshal encodes v (string, int/int64, []any, or map[string]any,
// recursively) into canonical bencoding.
func Marshal(v any) ([]byte, error) {
	var b strings.Builder
	if err := encode(&b, v); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

func encode(b *strings.Builder, v any) error {
	switch x := v.(type) {
	case string:
		b.WriteString(strconv.Itoa(len(x)))
		b.WriteByte(':')
		b.WriteString(x)
	case []byte:
		return encode(b, string(x))
	case int:
		return encode(b, int64(x))
	case int64:
		b.WriteByte('i')
		b.WriteString(strconv.FormatInt(x, 10))
		b.WriteByte('e')
	case []any:
		b.WriteByte('l')
		for _, e := range x {
			if err := encode(b, e); err != nil {
				return err
			}
		}
		b.WriteByte('e')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('d')
		for _, k := range keys {
			if err := encode(b, k); err != nil {
				return err
			}
			if err := encode(b, x[k]); err != nil {
				return err
			}
		}
		b.WriteByte('e')
	default:
		return fmt.Errorf("bencode: unsupported type %T", v)
	}
	return nil
}

// Unmarshal decodes one complete bencoded value; trailing bytes are an
// error.
func Unmarshal(data []byte) (any, error) {
	d := decoder{data: data}
	v, err := d.value()
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("bencode: %d trailing bytes", len(d.data)-d.pos)
	}
	return v, nil
}

type decoder struct {
	data []byte
	pos  int
}

var errTruncated = errors.New("bencode: truncated input")

func (d *decoder) peek() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, errTruncated
	}
	return d.data[d.pos], nil
}

func (d *decoder) value() (any, error) {
	c, err := d.peek()
	if err != nil {
		return nil, err
	}
	switch {
	case c == 'i':
		return d.integer()
	case c == 'l':
		return d.list()
	case c == 'd':
		return d.dict()
	case c >= '0' && c <= '9':
		return d.str()
	default:
		return nil, fmt.Errorf("bencode: unexpected byte %q at offset %d", c, d.pos)
	}
}

func (d *decoder) integer() (int64, error) {
	d.pos++ // 'i'
	end := d.pos
	for end < len(d.data) && d.data[end] != 'e' {
		end++
	}
	if end >= len(d.data) {
		return 0, errTruncated
	}
	s := string(d.data[d.pos:end])
	if s == "" {
		return 0, errors.New("bencode: empty integer")
	}
	if s == "-0" {
		return 0, errors.New("bencode: negative zero")
	}
	digits := s
	if strings.HasPrefix(s, "-") {
		digits = s[1:]
	}
	if len(digits) > 1 && digits[0] == '0' {
		return 0, fmt.Errorf("bencode: leading zero in integer %q", s)
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bencode: bad integer %q", s)
	}
	d.pos = end + 1
	return n, nil
}

func (d *decoder) str() (string, error) {
	colon := d.pos
	for colon < len(d.data) && d.data[colon] != ':' {
		colon++
	}
	if colon >= len(d.data) {
		return "", errTruncated
	}
	lenStr := string(d.data[d.pos:colon])
	if len(lenStr) > 1 && lenStr[0] == '0' {
		return "", fmt.Errorf("bencode: leading zero in length %q", lenStr)
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 {
		return "", fmt.Errorf("bencode: bad string length %q", lenStr)
	}
	start := colon + 1
	if start+n > len(d.data) {
		return "", errTruncated
	}
	d.pos = start + n
	return string(d.data[start : start+n]), nil
}

func (d *decoder) list() ([]any, error) {
	d.pos++ // 'l'
	out := []any{}
	for {
		c, err := d.peek()
		if err != nil {
			return nil, err
		}
		if c == 'e' {
			d.pos++
			return out, nil
		}
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
}

func (d *decoder) dict() (map[string]any, error) {
	d.pos++ // 'd'
	out := map[string]any{}
	prevKey := ""
	first := true
	for {
		c, err := d.peek()
		if err != nil {
			return nil, err
		}
		if c == 'e' {
			d.pos++
			return out, nil
		}
		key, err := d.str()
		if err != nil {
			return nil, fmt.Errorf("bencode: dict key: %w", err)
		}
		if !first && key <= prevKey {
			return nil, fmt.Errorf("bencode: dict keys not strictly sorted (%q after %q)", key, prevKey)
		}
		first = false
		prevKey = key
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		out[key] = v
	}
}

// Canonical reports whether data is the canonical encoding of its own
// decoded value — a cheap integrity check for info dictionaries.
func Canonical(data []byte) bool {
	v, err := Unmarshal(data)
	if err != nil {
		return false
	}
	re, err := Marshal(v)
	if err != nil {
		return false
	}
	return string(re) == string(data)
}
