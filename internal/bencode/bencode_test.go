package bencode

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"mfdl/internal/rng"
)

func mustMarshal(t *testing.T, v any) string {
	t.Helper()
	b, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestMarshalSpecExamples(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{"spam", "4:spam"},
		{"", "0:"},
		{int64(3), "i3e"},
		{int64(-3), "i-3e"},
		{int64(0), "i0e"},
		{[]any{"spam", "eggs"}, "l4:spam4:eggse"},
		{map[string]any{"cow": "moo", "spam": "eggs"}, "d3:cow3:moo4:spam4:eggse"},
		{map[string]any{"spam": []any{"a", "b"}}, "d4:spaml1:a1:bee"},
		{[]any{}, "le"},
		{map[string]any{}, "de"},
		{42, "i42e"},          // plain int
		{[]byte{0x61}, "1:a"}, // byte slice
	}
	for i, c := range cases {
		if got := mustMarshal(t, c.in); got != c.want {
			t.Fatalf("case %d: got %q, want %q", i, got, c.want)
		}
	}
}

func TestMarshalSortsKeys(t *testing.T) {
	got := mustMarshal(t, map[string]any{"zz": int64(1), "aa": int64(2), "mm": int64(3)})
	if got != "d2:aai2e2:mmi3e2:zzi1ee" {
		t.Fatalf("unsorted encoding %q", got)
	}
}

func TestMarshalUnsupportedType(t *testing.T) {
	if _, err := Marshal(3.14); err == nil {
		t.Fatal("float accepted")
	}
	if _, err := Marshal([]any{map[string]any{"x": struct{}{}}}); err == nil {
		t.Fatal("nested struct accepted")
	}
}

func TestUnmarshalSpecExamples(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"4:spam", "spam"},
		{"i3e", int64(3)},
		{"i-3e", int64(-3)},
		{"l4:spam4:eggse", []any{"spam", "eggs"}},
		{"d3:cow3:moo4:spam4:eggse", map[string]any{"cow": "moo", "spam": "eggs"}},
		{"le", []any{}},
		{"de", map[string]any{}},
	}
	for i, c := range cases {
		got, err := Unmarshal([]byte(c.in))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("case %d: got %#v, want %#v", i, got, c.want)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                        // empty
		"i3",                      // unterminated integer
		"ie",                      // empty integer
		"i03e",                    // leading zero
		"i-0e",                    // negative zero
		"i3ei4e",                  // trailing garbage
		"5:spam",                  // truncated string
		"01:a",                    // leading zero in length
		"-1:a",                    // negative length
		"l4:spam",                 // unterminated list
		"d3:cow",                  // dict key without value
		"d4:spam3:moo3:cow3:mooe", // unsorted keys
		"d3:cow1:a3:cow1:be",      // duplicate key
		"x",                       // unknown type
		"4spam",                   // missing colon (truncated scan)
	}
	for _, s := range bad {
		if _, err := Unmarshal([]byte(s)); err == nil {
			t.Fatalf("accepted %q", s)
		}
	}
}

func TestBinaryStringsSurvive(t *testing.T) {
	raw := string([]byte{0, 1, 2, 0xff, 'e', ':', 'i'})
	enc := mustMarshal(t, raw)
	got, err := Unmarshal([]byte(enc))
	if err != nil {
		t.Fatal(err)
	}
	if got.(string) != raw {
		t.Fatal("binary string corrupted")
	}
}

// randomValue builds a random bencodable value of bounded depth.
func randomValue(src *rng.Source, depth int) any {
	kind := src.Intn(4)
	if depth <= 0 {
		kind = src.Intn(2)
	}
	switch kind {
	case 0:
		n := src.Intn(8)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(byte(src.Intn(256)))
		}
		return sb.String()
	case 1:
		return int64(src.Intn(1<<20)) - 1<<19
	case 2:
		n := src.Intn(4)
		l := make([]any, n)
		for i := range l {
			l[i] = randomValue(src, depth-1)
		}
		return l
	default:
		n := src.Intn(4)
		m := map[string]any{}
		for i := 0; i < n; i++ {
			m[string(rune('a'+src.Intn(26)))] = randomValue(src, depth-1)
		}
		return m
	}
}

func TestRoundTripProperty(t *testing.T) {
	src := rng.New(11)
	f := func(uint8) bool {
		v := randomValue(src, 3)
		enc, err := Marshal(v)
		if err != nil {
			return false
		}
		dec, err := Unmarshal(enc)
		if err != nil {
			return false
		}
		re, err := Marshal(dec)
		if err != nil {
			return false
		}
		// Marshal∘Unmarshal∘Marshal must be the identity on encodings.
		return string(re) == string(enc) && reflect.DeepEqual(dec, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonical(t *testing.T) {
	if !Canonical([]byte("d3:cow3:mooe")) {
		t.Fatal("canonical input rejected")
	}
	if Canonical([]byte("i03e")) {
		t.Fatal("malformed input accepted")
	}
	if Canonical([]byte("")) {
		t.Fatal("empty input accepted")
	}
}

func BenchmarkMarshalDict(b *testing.B) {
	v := map[string]any{
		"announce": "http://tracker.example/announce",
		"info": map[string]any{
			"name": "season", "piece length": int64(262144),
			"pieces": strings.Repeat("x", 20*64),
			"files": []any{
				map[string]any{"length": int64(1 << 20), "path": []any{"e01.mkv"}},
				map[string]any{"length": int64(1 << 20), "path": []any{"e02.mkv"}},
			},
		},
	}
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(v); err != nil {
			b.Fatal(err)
		}
	}
}
