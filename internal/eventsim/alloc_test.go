package eventsim

import "testing"

// TestStepAllocsPerEvent pins the event loop's allocation budget: after the
// scratch buffers and the timer heap are warm, processing an event
// allocates O(1) — in practice amortized well under one allocation per
// event (occasional arrivals allocate a peer; everything else reuses
// buffers). A regression to per-event scans or per-event map churn shows
// up here as a multiple-allocations-per-event average.
func TestStepAllocsPerEvent(t *testing.T) {
	for _, sc := range []Scheme{CMFSD, MTCD, MTSD} {
		s := newBenchSim(t, benchConfig(sc, 2000))
		for i := 0; i < 500; i++ {
			if !s.stepOnce() {
				t.Fatalf("%v: horizon hit during settle", sc)
			}
		}
		avg := testing.AllocsPerRun(1000, func() {
			if !s.stepOnce() {
				t.Fatalf("%v: horizon hit during measurement", sc)
			}
		})
		if avg > 1 {
			t.Errorf("%v: %v allocations per event, want O(1) (<= 1 amortized)", sc, avg)
		}
	}
}

// TestEventsimSmoke100k processes a slice of events at a 10^5-peer
// population. Skipped in -short runs.
func TestEventsimSmoke100k(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := newBenchSim(t, benchConfig(CMFSD, 100_000))
	for i := 0; i < 20_000; i++ {
		if !s.stepOnce() {
			t.Fatalf("horizon hit at event %d", i)
		}
	}
	if s.dlCount+s.seedCount < 90_000 {
		t.Fatalf("population collapsed to %d", s.dlCount+s.seedCount)
	}
}
