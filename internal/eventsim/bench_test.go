package eventsim

import (
	"testing"

	"mfdl/internal/correlation"
	"mfdl/internal/rng"
)

// benchConfig holds a flash crowd of n peers with a horizon far enough
// away that the benchmark only ever measures steady event processing.
func benchConfig(scheme Scheme, n int) Config {
	cfg := baseConfig(scheme)
	if scheme == CMFSD {
		cfg.Rho = 0.3
	}
	cfg.P = 0.9
	cfg.FlashCrowd = n
	cfg.Horizon = 1e18
	cfg.Warmup = 0
	return cfg
}

// newBenchSim builds and initializes a sim without draining its event
// loop (mirrors Run's setup).
func newBenchSim(b testing.TB, cfg Config) *sim {
	b.Helper()
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	corr, err := correlation.New(cfg.K, cfg.P, cfg.Lambda0)
	if err != nil {
		b.Fatal(err)
	}
	s := &sim{
		cfg:  cfg,
		corr: corr,
		rng:  rng.New(cfg.Seed),
		res:  &Result{Config: cfg, Classes: make([]ClassStats, cfg.K)},
	}
	for i := range s.res.Classes {
		s.res.Classes[i].Class = i + 1
	}
	if !s.init() {
		b.Fatal("event loop refused to start")
	}
	return s
}

// benchmarkEventsimStep measures one event at a population of about n
// peers (the flash crowd dwarfs the Poisson arrivals over the measured
// window, so the population stays near n).
func benchmarkEventsimStep(b *testing.B, scheme Scheme, n int) {
	s := newBenchSim(b, benchConfig(scheme, n))
	// Settle: process a slice of events so leg states and rates mix.
	for i := 0; i < 50; i++ {
		if !s.stepOnce() {
			b.Fatal("horizon hit during settle")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.stepOnce() {
			b.Fatal("horizon hit during measurement")
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/secs, "peers/sec")
	}
}

func BenchmarkEventsimStep(b *testing.B) {
	for _, sc := range []Scheme{CMFSD, MTCD} {
		b.Run(sc.String()+"/n=1000", func(b *testing.B) { benchmarkEventsimStep(b, sc, 1_000) })
		b.Run(sc.String()+"/n=10000", func(b *testing.B) { benchmarkEventsimStep(b, sc, 10_000) })
		b.Run(sc.String()+"/n=100000", func(b *testing.B) {
			if testing.Short() {
				b.Skip("short mode")
			}
			benchmarkEventsimStep(b, sc, 100_000)
		})
	}
}
