package eventsim

import (
	"context"

	"mfdl/internal/replica"
	"mfdl/internal/stats"
)

// Sim adapts a Config to the replica engine: every replica reruns the
// same configuration at the engine-derived seed. The Config is treated as
// immutable; Simulate may be called concurrently.
type Sim struct {
	Config Config
}

// Simulate implements replica.Sim.
func (s Sim) Simulate(_ context.Context, r replica.Rep) (replica.Sample, error) {
	cfg := s.Config
	cfg.Seed = r.Seed
	out, err := Run(cfg)
	if err != nil {
		return replica.Sample{}, err
	}
	return out.Sample(), nil
}

// Sample flattens the run's metrics into the replica engine's named form:
// scalar aggregates under the standard replica keys, post-warmup user
// counts, and the per-class / per-bandwidth-class summaries for pooled
// merging.
func (r *Result) Sample() replica.Sample {
	s := replica.Sample{
		Values: map[string]float64{
			replica.OnlinePerFile:   r.AvgOnlinePerFile,
			replica.DownloadPerFile: r.AvgDownloadPerFile,
			replica.MeanDownloaders: r.MeanDownloaders,
			replica.MeanSeeds:       r.MeanSeeds,
			replica.FinalRho:        r.FinalRho.Mean(),
		},
		Counts: map[string]float64{
			replica.Completed: float64(r.CompletedUsers),
			replica.Arrived:   float64(r.ArrivedUsers),
			replica.Aborted:   float64(r.AbortedUsers),
			replica.SeedQuits: float64(r.SeedQuits),
		},
		Summaries: map[string]stats.Summary{
			replica.FinalRho: r.FinalRho,
		},
	}
	for _, c := range r.Classes {
		if c.Completed == 0 {
			continue
		}
		s.Counts[replica.ClassKey(c.Class, replica.Completed)] = float64(c.Completed)
		s.Summaries[replica.ClassKey(c.Class, replica.OnlinePerFile)] = c.OnlineTime
		s.Summaries[replica.ClassKey(c.Class, replica.DownloadPerFile)] = c.DownloadTime
	}
	for _, b := range r.Bandwidth {
		s.Values[replica.BandwidthKey(b.Name, replica.OnlinePerFile)] = b.OnlineTime.Mean()
		s.Values[replica.BandwidthKey(b.Name, replica.DownloadPerFile)] = b.DownloadTime.Mean()
		s.Counts[replica.BandwidthKey(b.Name, replica.Completed)] = float64(b.Completed)
		s.Summaries[replica.BandwidthKey(b.Name, replica.OnlinePerFile)] = b.OnlineTime
		s.Summaries[replica.BandwidthKey(b.Name, replica.DownloadPerFile)] = b.DownloadTime
	}
	return s
}
