package eventsim

import (
	"math"
	"testing"

	"mfdl/internal/adapt"
	"mfdl/internal/fluid"
	"mfdl/internal/stats"
)

// fastParams is the paper's parameter regime rescaled in time (μ and γ both
// ×10) so simulated populations stay small and tests run quickly. The fluid
// predictions rescale exactly: T = (γ−μ)/(γμη) = 6, online per file = 8.
var fastParams = fluid.Params{Mu: 0.2, Eta: 0.5, Gamma: 0.5}

func baseConfig(scheme Scheme) Config {
	return Config{
		Params:  fastParams,
		K:       10,
		Lambda0: 1,
		P:       1,
		Scheme:  scheme,
		Horizon: 4000,
		Warmup:  800,
		Seed:    1,
	}
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedUsers < 100 {
		t.Fatalf("only %d completed users — horizon too short", res.CompletedUsers)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	good := baseConfig(MTSD)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Lambda0 = 0 },
		func(c *Config) { c.P = 0 },
		func(c *Config) { c.P = 1.5 },
		func(c *Config) { c.Scheme = Scheme(9) },
		func(c *Config) { c.Rho = -1 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Warmup = c.Horizon },
		func(c *Config) { c.CheaterFraction = 2 },
		func(c *Config) { c.Adapt = &adapt.Config{} },
	}
	for i, mutate := range cases {
		bad := baseConfig(MTSD)
		mutate(&bad)
		if bad.Validate() == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{MTCD: "MTCD", MTSD: "MTSD", MFCD: "MFCD", CMFSD: "CMFSD"}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%v", s)
		}
	}
	if Scheme(42).String() == "" {
		t.Fatal("unknown scheme has empty name")
	}
}

func TestMTSDMatchesFluidPrediction(t *testing.T) {
	res := run(t, baseConfig(MTSD))
	// Fluid: online per file = T + 1/γ = 8; download per file = 6.
	if e := stats.RelErr(res.AvgOnlinePerFile, 8, 1); e > 0.15 {
		t.Fatalf("MTSD online per file %v, fluid predicts 8 (err %v)", res.AvgOnlinePerFile, e)
	}
	if e := stats.RelErr(res.AvgDownloadPerFile, 6, 1); e > 0.15 {
		t.Fatalf("MTSD download per file %v, fluid predicts 6", res.AvgDownloadPerFile)
	}
}

func TestMTCDMatchesFluidPrediction(t *testing.T) {
	res := run(t, baseConfig(MTCD))
	// Fluid at p=1, K=10 (rescaled): A = (γ−μ/10)/(γμη) = 9.6;
	// online per file = A + 1/(10γ) = 9.8.
	if e := stats.RelErr(res.AvgOnlinePerFile, 9.8, 1); e > 0.15 {
		t.Fatalf("MTCD online per file %v, fluid predicts 9.8", res.AvgOnlinePerFile)
	}
	if e := stats.RelErr(res.AvgDownloadPerFile, 9.6, 1); e > 0.15 {
		t.Fatalf("MTCD download per file %v, fluid predicts 9.6", res.AvgDownloadPerFile)
	}
}

func TestMFCDBehavesLikeMTCD(t *testing.T) {
	a := run(t, baseConfig(MTCD))
	b := run(t, baseConfig(MFCD))
	if e := stats.RelErr(b.AvgOnlinePerFile, a.AvgOnlinePerFile, 1); e > 0.1 {
		t.Fatalf("MFCD %v vs MTCD %v", b.AvgOnlinePerFile, a.AvgOnlinePerFile)
	}
}

func TestMTCDBeatsNobodyAtFullCorrelation(t *testing.T) {
	// The paper's headline: at p=1 MTCD is worse than MTSD.
	seq := run(t, baseConfig(MTSD))
	con := run(t, baseConfig(MTCD))
	if con.AvgOnlinePerFile <= seq.AvgOnlinePerFile {
		t.Fatalf("MTCD %v should exceed MTSD %v at p=1",
			con.AvgOnlinePerFile, seq.AvgOnlinePerFile)
	}
}

func TestCMFSDRho0BeatsMFCD(t *testing.T) {
	cfg := baseConfig(CMFSD)
	cfg.P = 0.9
	cfg.Rho = 0
	collab := run(t, cfg)
	base := baseConfig(MFCD)
	base.P = 0.9
	mfcd := run(t, base)
	if collab.AvgOnlinePerFile >= 0.85*mfcd.AvgOnlinePerFile {
		t.Fatalf("CMFSD ρ=0 (%v) not clearly better than MFCD (%v)",
			collab.AvgOnlinePerFile, mfcd.AvgOnlinePerFile)
	}
}

func TestCMFSDRho1ApproachesMFCD(t *testing.T) {
	cfg := baseConfig(CMFSD)
	cfg.Rho = 1
	seq := run(t, cfg)
	mfcd := run(t, baseConfig(MFCD))
	if e := stats.RelErr(seq.AvgOnlinePerFile, mfcd.AvgOnlinePerFile, 1); e > 0.15 {
		t.Fatalf("CMFSD ρ=1 (%v) far from MFCD (%v)",
			seq.AvgOnlinePerFile, mfcd.AvgOnlinePerFile)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := baseConfig(MTSD)
	cfg.Horizon = 500
	cfg.Warmup = 100
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgOnlinePerFile != b.AvgOnlinePerFile || a.CompletedUsers != b.CompletedUsers {
		t.Fatal("same seed produced different results")
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.AvgOnlinePerFile == a.AvgOnlinePerFile {
		t.Fatal("different seeds produced identical results")
	}
}

func TestLittlesLawInSimulation(t *testing.T) {
	// Mean downloader legs ≈ per-file arrival rate × per-file download
	// time. For MTSD at p=1, λ_files = λ₀·K·p = 10, per-file T = 6, so
	// mean downloaders ≈ 60... legs count one at a time per user: the
	// user is a downloader for 6 units per file → L = 10·6 = 60.
	res := run(t, baseConfig(MTSD))
	want := 10.0 * res.AvgDownloadPerFile
	if e := stats.RelErr(res.MeanDownloaders, want, 1); e > 0.2 {
		t.Fatalf("L = %v, λW = %v", res.MeanDownloaders, want)
	}
}

func TestSeedPopulationMatchesGamma(t *testing.T) {
	// Every completed file yields one seeding interval of mean 1/γ = 2:
	// seed legs ≈ file completion rate × 2 = 10·2 = 20 (MTSD).
	res := run(t, baseConfig(MTSD))
	if e := stats.RelErr(res.MeanSeeds, 20, 1); e > 0.2 {
		t.Fatalf("mean seeds %v, want ≈20", res.MeanSeeds)
	}
}

func TestPerClassStatsPopulated(t *testing.T) {
	cfg := baseConfig(MTCD)
	cfg.P = 0.5
	res := run(t, cfg)
	total := 0
	for _, c := range res.Classes {
		total += c.Completed
		if c.Completed > 0 && c.OnlineTime.Mean() < c.DownloadTime.Mean() {
			t.Fatalf("class %d online < download", c.Class)
		}
	}
	if total != res.CompletedUsers {
		t.Fatalf("class totals %d != completed %d", total, res.CompletedUsers)
	}
	// Middle classes must be represented at p=0.5.
	if res.Classes[4].Completed == 0 {
		t.Fatal("class 5 empty at p=0.5")
	}
}

func TestOnlineEqualsDownloadPlusSeedingMTCD(t *testing.T) {
	// Under MTCD a user stays online 1/γ past its last completion (per
	// leg, overlapping): mean online − mean download per user should be
	// positive and bounded by a few 1/γ.
	res := run(t, baseConfig(MTCD))
	diff := res.AvgOnlinePerFile - res.AvgDownloadPerFile
	if diff <= 0 || diff > 3*(1/fastParams.Gamma) {
		t.Fatalf("online−download per file = %v implausible", diff)
	}
}

func TestAdaptDriftsUpWithCheaters(t *testing.T) {
	// With most peers cheating, obedient peers give via virtual seeds but
	// receive little: Δ > 0 and Adapt must push ρ toward 1 (the paper's
	// degeneration-to-MFCD prediction).
	cfg := baseConfig(CMFSD)
	cfg.P = 0.9
	cfg.CheaterFraction = 0.8
	ac := adapt.Config{
		Lower: -0.05, Upper: 0.05, StepUp: 0.2, StepDown: 0.1,
		Period: 5, InitialRho: 0, Consecutive: 1,
	}
	cfg.Adapt = &ac
	res := run(t, cfg)
	if res.FinalRho.N() == 0 {
		t.Fatal("no adaptive peers recorded")
	}
	if res.FinalRho.Mean() < 0.5 {
		t.Fatalf("mean final ρ %v; expected drift toward 1 under cheating", res.FinalRho.Mean())
	}
}

func TestAdaptStaysLowWhenAllObedient(t *testing.T) {
	// With everyone collaborating at high correlation, contributions and
	// benefits roughly balance: ρ should stay well below 1.
	cfg := baseConfig(CMFSD)
	cfg.P = 1
	ac := adapt.Config{
		Lower: -0.05, Upper: 0.05, StepUp: 0.2, StepDown: 0.1,
		Period: 5, InitialRho: 0, Consecutive: 2,
	}
	cfg.Adapt = &ac
	res := run(t, cfg)
	if res.FinalRho.N() == 0 {
		t.Fatal("no adaptive peers recorded")
	}
	if res.FinalRho.Mean() > 0.5 {
		t.Fatalf("mean final ρ %v; expected to stay low when all obey", res.FinalRho.Mean())
	}
}

func TestCheaterFractionOneIsMFCDLike(t *testing.T) {
	cfg := baseConfig(CMFSD)
	cfg.CheaterFraction = 1
	cfg.Rho = 0 // ignored by cheaters
	res := run(t, cfg)
	mfcd := run(t, baseConfig(MFCD))
	if e := stats.RelErr(res.AvgOnlinePerFile, mfcd.AvgOnlinePerFile, 1); e > 0.15 {
		t.Fatalf("all-cheaters CMFSD %v far from MFCD %v",
			res.AvgOnlinePerFile, mfcd.AvgOnlinePerFile)
	}
}

func TestNoCompletionsWithoutArrivals(t *testing.T) {
	cfg := baseConfig(MTSD)
	cfg.P = 1e-12 // essentially no arrivals, but valid
	cfg.Horizon = 10
	cfg.Warmup = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedUsers != 0 {
		t.Fatalf("completed %d users with no arrivals", res.CompletedUsers)
	}
	if !math.IsNaN(res.AvgOnlinePerFile) {
		t.Fatalf("empty average should be NaN, got %v", res.AvgOnlinePerFile)
	}
}

func BenchmarkMTSDRun(b *testing.B) {
	cfg := baseConfig(MTSD)
	cfg.Horizon = 1000
	cfg.Warmup = 200
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCMFSDRun(b *testing.B) {
	cfg := baseConfig(CMFSD)
	cfg.P = 0.9
	cfg.Horizon = 1000
	cfg.Warmup = 200
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMTSDPerClassScaling(t *testing.T) {
	// Class-i users take ≈ i × (T + 1/γ) = 8i online under the rescaled
	// parameters; check classes with decent samples at p = 0.5.
	cfg := baseConfig(MTSD)
	cfg.P = 0.5
	cfg.Horizon = 6000
	cfg.Warmup = 1000
	res := run(t, cfg)
	for _, c := range res.Classes {
		if c.Completed < 80 {
			continue // thin class: skip
		}
		want := 8 * float64(c.Class)
		if e := stats.RelErr(c.OnlineTime.Mean(), want, 1); e > 0.15 {
			t.Fatalf("class %d online %v, fluid predicts %v (err %.0f%%)",
				c.Class, c.OnlineTime.Mean(), want, 100*e)
		}
	}
}

func TestFlashCrowdAndTraceRecorded(t *testing.T) {
	cfg := baseConfig(CMFSD)
	cfg.FlashCrowd = 100
	cfg.SampleEvery = 5
	cfg.Horizon = 200
	cfg.Warmup = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("trace not recorded")
	}
	dl := res.Trace.Series("downloaders")
	if dl == nil || dl.Len() < 10 {
		t.Fatal("downloader series missing or short")
	}
	// The flash crowd is visible at t=0.
	if dl.At(0) < 99 {
		t.Fatalf("flash crowd not present at t=0: %v", dl.At(0))
	}
	if res.Trace.Series("seeds") == nil {
		t.Fatal("seed series missing")
	}
}

func TestFlashCrowdValidation(t *testing.T) {
	cfg := baseConfig(MTSD)
	cfg.FlashCrowd = -1
	if cfg.Validate() == nil {
		t.Fatal("negative flash crowd accepted")
	}
	cfg = baseConfig(MTSD)
	cfg.SampleEvery = -1
	if cfg.Validate() == nil {
		t.Fatal("negative sample interval accepted")
	}
}

func TestHeterogeneousMatchesMultiClassFluid(t *testing.T) {
	// E15: a single torrent (K=1) with two bandwidth classes, validated
	// against the Section-2 multi-class fluid model (assumptions 1+2).
	classes := []BandwidthClass{
		{Name: "broadband", Mu: 0.4, Weight: 4, Fraction: 0.3},
		{Name: "dsl", Mu: 0.1, Weight: 1, Fraction: 0.7},
	}
	cfg := Config{
		Params:    fluid.Params{Mu: 0.2, Eta: 0.5, Gamma: 0.5},
		K:         1,
		Lambda0:   4, // bigger swarm to tame mean-field noise
		P:         1,
		Scheme:    MTSD,
		Horizon:   3000,
		Warmup:    600,
		Seed:      3,
		Bandwidth: classes,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bandwidth) != 2 {
		t.Fatalf("bandwidth stats %d", len(res.Bandwidth))
	}
	// Fluid reference.
	fm, err := fluid.NewMultiClass(0.5, []fluid.Class{
		{Name: "broadband", Mu: 0.4, C: 4, Lambda: 4 * 0.3, Gamma: 0.5},
		{Name: "dsl", Mu: 0.1, C: 1, Lambda: 4 * 0.7, Gamma: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := fluid.SteadyState(fm, fluid.SteadyStateOptions{MaxTime: 2e6})
	if err != nil {
		t.Fatal(err)
	}
	dl, _, err := fm.ClassTimes(ss)
	if err != nil {
		t.Fatal(err)
	}
	for i, bs := range res.Bandwidth {
		if bs.Completed < 200 {
			t.Fatalf("%s: only %d completions", bs.Name, bs.Completed)
		}
		got := bs.DownloadTime.Mean()
		if e := stats.RelErr(got, dl[i], 1); e > 0.2 {
			t.Fatalf("%s download %v, fluid predicts %v (err %.0f%%)",
				bs.Name, got, dl[i], 100*e)
		}
	}
	// Ordering: broadband finishes faster.
	if res.Bandwidth[0].DownloadTime.Mean() >= res.Bandwidth[1].DownloadTime.Mean() {
		t.Fatal("broadband not faster than dsl")
	}
}

func TestBandwidthValidation(t *testing.T) {
	cfg := baseConfig(MTSD)
	cfg.Bandwidth = []BandwidthClass{{Name: "a", Mu: 0.1, Weight: 1, Fraction: 0.5}}
	if cfg.Validate() == nil {
		t.Fatal("fractions not summing to 1 accepted")
	}
	cfg.Bandwidth = []BandwidthClass{{Name: "a", Mu: 0, Weight: 1, Fraction: 1}}
	if cfg.Validate() == nil {
		t.Fatal("zero μ accepted")
	}
}
