package eventsim

// timerHeap is an indexed binary min-heap over the rate-independent
// absolute timers of the event loop: per-torrent seeding-leg departures
// (MTCD/MFCD/MTSD) and real-seed peer departures (CMFSD). Those are the
// only event times that never change once drawn, so they can wait in a
// heap instead of being rescanned every event. Rate-coupled times
// (completions, abort and quit budgets) must NOT live here: they are
// recomputed from the current rates each event, and storing them as
// absolutes would change the floating-point operation order the goldens
// pin (see the determinism contract in DESIGN.md).
//
// Entries are keyed by (time, peer position, sub) — the peer's index in
// s.peers and the candidate's scan position within the peer — so the heap
// minimum ties exactly like the former linear candidate scan, which kept
// the first candidate at a strictly smaller time. The heap is indexed:
// every peer records its entries' heap slots in heapIdx[sub], giving
// O(log n) removal when an abort or quit retires a peer with pending
// timers, and O(log n) re-keying when a swap-remove moves a peer to a new
// position.
type timerHeap struct {
	e []seedTimer
}

// seedTimer is one pending seed-departure event. sub is the leg index for
// leg timers and 0 for a CMFSD peer timer (CMFSD never has leg timers, so
// the sub spaces cannot collide).
type seedTimer struct {
	at  float64
	p   *peer
	sub int32
}

// less orders entries by (time, peer position, sub): the tie-break order
// of the former candidate scan.
func (h *timerHeap) less(i, j int) bool {
	a, b := &h.e[i], &h.e[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.p.pos != b.p.pos {
		return a.p.pos < b.p.pos
	}
	return a.sub < b.sub
}

func (h *timerHeap) swap(i, j int) {
	h.e[i], h.e[j] = h.e[j], h.e[i]
	h.e[i].p.heapIdx[h.e[i].sub] = int32(i)
	h.e[j].p.heapIdx[h.e[j].sub] = int32(j)
}

func (h *timerHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *timerHeap) siftDown(i int) {
	n := len(h.e)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h.swap(i, least)
		i = least
	}
}

// push inserts a timer for (p, sub) firing at the given time.
func (h *timerHeap) push(at float64, p *peer, sub int32) {
	i := len(h.e)
	h.e = append(h.e, seedTimer{at: at, p: p, sub: sub})
	p.heapIdx[sub] = int32(i)
	h.siftUp(i)
}

// min returns the earliest timer without removing it.
func (h *timerHeap) min() (seedTimer, bool) {
	if len(h.e) == 0 {
		return seedTimer{}, false
	}
	return h.e[0], true
}

// pop removes the earliest timer.
func (h *timerHeap) pop() {
	h.removeAt(0)
}

// remove deletes the timer of (p, sub) if one is pending.
func (h *timerHeap) remove(p *peer, sub int32) {
	if i := p.heapIdx[sub]; i >= 0 {
		h.removeAt(int(i))
	}
}

func (h *timerHeap) removeAt(i int) {
	h.e[i].p.heapIdx[h.e[i].sub] = -1
	last := len(h.e) - 1
	if i != last {
		h.e[i] = h.e[last]
		h.e[i].p.heapIdx[h.e[i].sub] = int32(i)
	}
	h.e = h.e[:last]
	if i < last {
		// The moved entry can be out of order in either direction.
		h.siftUp(i)
		h.siftDown(i)
	}
}

// fixPos restores the heap invariant for every pending timer of a peer
// whose position in s.peers just changed. Positions only decrease (a
// swap-remove moves the tail peer to an earlier index), so every affected
// key decreased and sifting up suffices. Entries of the same peer keep
// their relative order (same time ordering, same position, same subs), so
// fixing them one at a time is sound.
func (h *timerHeap) fixPos(p *peer) {
	for sub := range p.heapIdx {
		if i := p.heapIdx[sub]; i >= 0 {
			h.siftUp(int(i))
		}
	}
}
