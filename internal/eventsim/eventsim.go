// Package eventsim is a flow-level, event-driven simulator of the
// server–torrent system of Section 3.1: users arrive as a Poisson process,
// request a random subset of the K files according to the binomial
// correlation model, and download them under one of the four schemes the
// paper analyzes (MTCD, MTSD, MFCD, CMFSD). Transfers are fluid: between
// events every downloading peer progresses at a rate assembled from the
// same two service sources the fluid models use — tit-for-tat exchange
// (η times the peer's own upload allocation, assumption 1 of Section 2) and
// seed-like capacity shared proportionally to download bandwidth
// (assumption 2).
//
// The simulator exists to (a) validate the shape of the fluid-model
// predictions with an independent mechanism (experiment E9 in DESIGN.md)
// and (b) evaluate the Adapt controller and cheating peers (E8), which are
// per-peer and dynamic and therefore outside the fluid model.
package eventsim

import (
	"errors"
	"fmt"
	"math"

	"mfdl/internal/adapt"
	"mfdl/internal/correlation"
	"mfdl/internal/faults"
	"mfdl/internal/fluid"
	"mfdl/internal/rng"
	"mfdl/internal/scheme"
	"mfdl/internal/stats"
	"mfdl/internal/trace"
)

// Scheme selects the downloading scheme to simulate. It aliases the
// shared scheme.SimScheme identifier (this package's original numbering),
// so values flow between the CLIs, internal/sim and both simulators
// without translation.
type Scheme = scheme.SimScheme

// The four schemes of the paper.
//
// Deprecated: these local names are aliases kept so existing callers
// compile unchanged; new code should use the scheme.Sim* constants.
const (
	MTCD  = scheme.SimMTCD
	MTSD  = scheme.SimMTSD
	MFCD  = scheme.SimMFCD
	CMFSD = scheme.SimCMFSD
)

// concurrent reports whether legs run simultaneously with split bandwidth.
func concurrent(s Scheme) bool { return s == MTCD || s == MFCD }

// Config parameterizes one simulation run.
type Config struct {
	fluid.Params
	// K is the number of files (torrents or subtorrents).
	K int
	// Lambda0 is the web-server visiting rate λ₀.
	Lambda0 float64
	// P is the file correlation.
	P float64
	// Scheme is the downloading scheme.
	Scheme Scheme
	// Rho is the fixed CMFSD allocation ratio when Adapt is nil.
	Rho float64
	// Adapt, when non-nil, runs the Adapt controller on every obedient
	// CMFSD peer (overrides Rho).
	Adapt *adapt.Config
	// CheaterFraction is the fraction of CMFSD peers that pin ρ = 1 and
	// never virtual-seed (Section 4.3's selfish peers).
	CheaterFraction float64
	// Horizon is the simulated duration.
	Horizon float64
	// Warmup discards users arriving before this time from the
	// statistics (and starts the population averages there).
	Warmup float64
	// Seed drives the deterministic RNG.
	Seed uint64
	// FlashCrowd creates this many users at t = 0 (in addition to the
	// Poisson arrivals) for transient studies.
	FlashCrowd int
	// SampleEvery, when positive, records the downloader and seed
	// populations into Result.Trace at this interval.
	SampleEvery float64
	// Bandwidth optionally splits arrivals into heterogeneous upload
	// classes (Section 2's C_i(μ_i, c_i) framework); empty means every
	// peer uploads at Params.Mu with equal download weight.
	Bandwidth []BandwidthClass
	// Faults injects deterministic churn: downloader aborts at rate
	// AbortRate (the fluid θ), virtual-seed quits at SeedQuitRate
	// (CMFSD), and slow-peer throttling. Fault draws come from dedicated
	// per-peer streams keyed by Faults.Seed mixed with Seed, so the main
	// RNG consumes exactly the same values as a faults-off run: disabling
	// faults reproduces the pre-fault trajectories bit for bit.
	Faults faults.Config
}

// BandwidthClass is one heterogeneous peer class.
type BandwidthClass struct {
	// Name labels the class in results.
	Name string
	// Mu is the class upload bandwidth (replaces Params.Mu).
	Mu float64
	// Weight is the download-capacity weight c_i used to split the
	// seeds' altruistic service (assumption 2).
	Weight float64
	// Fraction is the share of arrivals in this class; fractions must
	// sum to 1.
	Fraction float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.K < 1 {
		return fmt.Errorf("eventsim: K = %d must be >= 1", c.K)
	}
	if c.Lambda0 <= 0 {
		return errors.New("eventsim: λ₀ must be positive")
	}
	if c.P <= 0 || c.P > 1 {
		return fmt.Errorf("eventsim: p = %v outside (0,1]", c.P)
	}
	if c.Scheme < MTCD || c.Scheme > CMFSD {
		return fmt.Errorf("eventsim: unknown scheme %d", int(c.Scheme))
	}
	if c.Rho < 0 || c.Rho > 1 {
		return fmt.Errorf("eventsim: ρ = %v outside [0,1]", c.Rho)
	}
	if c.Adapt != nil {
		if err := c.Adapt.Validate(); err != nil {
			return err
		}
	}
	if c.CheaterFraction < 0 || c.CheaterFraction > 1 {
		return fmt.Errorf("eventsim: cheater fraction %v outside [0,1]", c.CheaterFraction)
	}
	if c.Horizon <= 0 {
		return errors.New("eventsim: horizon must be positive")
	}
	if c.Warmup < 0 || c.Warmup >= c.Horizon {
		return fmt.Errorf("eventsim: warmup %v outside [0, horizon)", c.Warmup)
	}
	if c.FlashCrowd < 0 {
		return errors.New("eventsim: FlashCrowd must be non-negative")
	}
	if c.SampleEvery < 0 {
		return errors.New("eventsim: SampleEvery must be non-negative")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if len(c.Bandwidth) > 0 {
		sum := 0.0
		for _, b := range c.Bandwidth {
			if b.Mu <= 0 || b.Weight <= 0 {
				return fmt.Errorf("eventsim: bandwidth class %q needs positive μ and weight", b.Name)
			}
			if b.Fraction < 0 {
				return fmt.Errorf("eventsim: bandwidth class %q has negative fraction", b.Name)
			}
			sum += b.Fraction
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("eventsim: bandwidth fractions sum to %v, want 1", sum)
		}
	}
	return nil
}

// ClassStats aggregates departed users of one class. With fault injection
// the time summaries include aborted users' partial times (Little's law
// with churn); Completed counts only full completions.
type ClassStats struct {
	Class        int
	Completed    int
	OnlineTime   stats.Summary
	DownloadTime stats.Summary
}

// BandwidthStats aggregates completed users of one bandwidth class.
type BandwidthStats struct {
	Name         string
	Completed    int
	OnlineTime   stats.Summary
	DownloadTime stats.Summary
}

// Result is the outcome of one run.
type Result struct {
	Config Config
	// Classes holds per-class statistics for classes 1..K.
	Classes []ClassStats
	// ArrivedUsers and CompletedUsers count users arriving after warmup
	// (completed = departed before the horizon).
	ArrivedUsers, CompletedUsers int
	// AbortedUsers counts counted users removed by an injected abort.
	// Aborted users contribute their (partial) online and download times
	// to the averages — Little's law with churn charges aborters' time in
	// system, exactly as the fluid θ·x term does — but never to Completed.
	AbortedUsers int
	// SeedQuits counts injected virtual-seed departures (CMFSD).
	SeedQuits int
	// AvgOnlinePerFile is Σ online time / Σ files requested over counted
	// completed users (the paper's metric).
	AvgOnlinePerFile float64
	// AvgDownloadPerFile is the same aggregation over download times.
	AvgDownloadPerFile float64
	// MeanDownloaders and MeanSeeds are time-averaged leg populations
	// after warmup.
	MeanDownloaders, MeanSeeds float64
	// FinalRho summarizes the ρ of CMFSD peers alive or completed after
	// warmup (only meaningful with Adapt or cheaters).
	FinalRho stats.Summary
	// Trace holds the sampled "downloaders" and "seeds" population
	// series when Config.SampleEvery > 0, else nil.
	Trace *trace.Recorder
	// Bandwidth holds per-bandwidth-class statistics (parallel to
	// Config.Bandwidth; empty for homogeneous runs).
	Bandwidth []BandwidthStats
}

// legState is the lifecycle of one requested file.
type legState uint8

const (
	legWaiting legState = iota
	legDownloading
	legSeeding // per-torrent seeding (MTCD/MFCD/MTSD)
	legDone
)

type leg struct {
	torrent      int
	state        legState
	remaining    float64
	rate         float64
	seedDepartAt float64
}

type peer struct {
	id        uint64
	class     int
	arrivalAt float64
	legs      []leg
	cursor    int // current leg for sequential schemes
	finished  int
	rho       float64
	ctrl      *adapt.Controller
	cheater   bool
	counted   bool // arrived after warmup: include in statistics

	// Fault state: remaining downloading time until an injected abort,
	// remaining virtual-seeding time until an injected quit (both +Inf
	// when faults are off), and the outcome flags.
	abortBudget  float64
	vsQuitBudget float64
	vsQuit       bool
	aborted      bool

	// Bandwidth class (index into Config.Bandwidth, -1 when homogeneous).
	bwClass int
	mu      float64 // upload bandwidth
	weight  float64 // download-capacity weight for seed-service split

	lastCompletionAt float64
	dlAccum          float64
	virtUp, virtDown float64
	virtDownRate     float64 // current virtual-seed receive rate
	seeding          bool    // CMFSD real-seed phase
	seedDepartAt     float64

	// pos is the peer's index in s.peers, maintained across swap-removes;
	// heapIdx[sub] is the heap slot of the peer's pending seed timer for
	// sub (leg index, or 0 for the CMFSD peer timer), -1 when none.
	pos     int32
	heapIdx []int32
}

// downloadingLeg returns the active downloading leg index, or -1.
func (p *peer) downloadingLeg() int {
	if p.seeding {
		return -1
	}
	for i := range p.legs {
		if p.legs[i].state == legDownloading {
			return i
		}
	}
	return -1
}

// Run executes the simulation and aggregates the result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	corr, err := correlation.New(cfg.K, cfg.P, cfg.Lambda0)
	if err != nil {
		return nil, err
	}
	// The fault plan mixes the sim seed into the chaos seed so replicas
	// (distinct sim seeds) draw decorrelated faults while each (seed,
	// chaos-seed) pair stays fully deterministic.
	plan, err := faults.NewPlan(cfg.Faults.Mixed(cfg.Seed), nil)
	if err != nil {
		return nil, err
	}
	s := &sim{
		cfg:  cfg,
		corr: corr,
		rng:  rng.New(cfg.Seed),
		plan: plan,
		res: &Result{
			Config:  cfg,
			Classes: make([]ClassStats, cfg.K),
		},
	}
	for i := range s.res.Classes {
		s.res.Classes[i].Class = i + 1
	}
	for _, b := range cfg.Bandwidth {
		s.res.Bandwidth = append(s.res.Bandwidth, BandwidthStats{Name: b.Name})
	}
	s.run()
	s.finish()
	return s.res, nil
}

type sim struct {
	cfg    Config
	corr   *correlation.Model
	rng    *rng.Source
	plan   *faults.Plan // nil when faults are disabled
	nextID uint64
	peers  []*peer
	res    *Result

	now        float64
	totalRate  float64
	classCDF   []float64
	dlPop      stats.TimeWeighted
	seedPop    stats.TimeWeighted
	statsBegan bool

	sumOnline, sumDownload float64
	sumFiles               int

	// Event-loop state (owned by init/stepOnce).
	lambdaTot   float64
	nextArrival float64
	nextAdapt   float64
	nextSample  float64

	// timers holds the pending seed-departure events (the only absolute,
	// rate-independent times); everything rate-coupled is recomputed per
	// event in stepOnce's fused pass.
	timers timerHeap
	// dlCount / seedCount incrementally track the leg populations the
	// former populations() scan counted (integers, so incremental
	// maintenance is exact).
	dlCount, seedCount int
	// Per-event scratch for the multi-torrent rate pass.
	seedCapBuf, weightSumBuf []float64
}

// classSample draws a user class ∝ λ_i.
func (s *sim) classSample() int {
	if s.classCDF == nil {
		s.classCDF = make([]float64, s.cfg.K)
		acc := 0.0
		for i := 1; i <= s.cfg.K; i++ {
			acc += s.corr.UserRate(i)
			s.classCDF[i-1] = acc
		}
		s.totalRate = acc
	}
	u := s.rng.Float64() * s.totalRate
	for i, c := range s.classCDF {
		if u <= c {
			return i + 1
		}
	}
	return s.cfg.K
}

// fileSubset draws a uniform random subset of size n of the K files.
func (s *sim) fileSubset(n int) []int {
	perm := s.rng.Perm(s.cfg.K)
	return perm[:n]
}

// newPeer materializes an arriving user.
func (s *sim) newPeer() *peer {
	class := s.classSample()
	files := s.fileSubset(class)
	p := &peer{
		id:           s.nextID,
		class:        class,
		arrivalAt:    s.now,
		legs:         make([]leg, class),
		heapIdx:      make([]int32, class),
		counted:      s.now >= s.cfg.Warmup,
		rho:          s.cfg.Rho,
		bwClass:      -1,
		mu:           s.cfg.Mu,
		weight:       1,
		abortBudget:  math.Inf(1),
		vsQuitBudget: math.Inf(1),
	}
	for i := range p.heapIdx {
		p.heapIdx[i] = -1
	}
	s.nextID++
	if len(s.cfg.Bandwidth) > 0 {
		u := s.rng.Float64()
		acc := 0.0
		for i, b := range s.cfg.Bandwidth {
			acc += b.Fraction
			if u <= acc || i == len(s.cfg.Bandwidth)-1 {
				p.bwClass = i
				p.mu = b.Mu
				p.weight = b.Weight
				break
			}
		}
	}
	if s.plan != nil {
		// All fault draws come from per-peer streams keyed by id, so the
		// main RNG above is untouched relative to a faults-off run.
		p.abortBudget = s.plan.AbortAfter(p.id)
		if s.cfg.Scheme == CMFSD && p.class > 1 {
			p.vsQuitBudget = s.plan.SeedQuitAfter(p.id)
		}
		if f := s.plan.UploadFactor(p.id); f < 1 {
			p.mu *= f
			s.plan.NoteSlowPeer()
		}
	}
	for i, f := range files {
		p.legs[i] = leg{torrent: f, state: legWaiting, remaining: 1}
	}
	if concurrent(s.cfg.Scheme) {
		for i := range p.legs {
			p.legs[i].state = legDownloading
		}
	} else {
		p.legs[0].state = legDownloading
	}
	if s.cfg.Scheme == CMFSD {
		if s.rng.Bernoulli(s.cfg.CheaterFraction) {
			p.cheater = true
			p.rho = 1
		} else if s.cfg.Adapt != nil {
			ctrl, err := adapt.NewController(*s.cfg.Adapt)
			if err == nil {
				p.ctrl = ctrl
				p.rho = ctrl.Rho()
			}
		}
	}
	return p
}

// admit adds a materialized peer to the swarm, maintaining the peer's
// position index and the incremental leg-population counters.
func (s *sim) admit(p *peer) {
	if p.counted {
		s.res.ArrivedUsers++
	}
	p.pos = int32(len(s.peers))
	s.peers = append(s.peers, p)
	if concurrent(s.cfg.Scheme) {
		s.dlCount += p.class
	} else {
		s.dlCount++
	}
}

// tftUpload returns the upload bandwidth a downloading peer devotes to
// tit-for-tat in its current torrent.
func (s *sim) tftUpload(p *peer) float64 {
	switch s.cfg.Scheme {
	case MTCD, MFCD:
		return p.mu / float64(p.class)
	case MTSD:
		return p.mu
	default: // CMFSD
		if p.class == 1 || p.finished == 0 {
			return p.mu
		}
		return p.rho * p.mu
	}
}

// virtualUpload returns the CMFSD virtual-seed bandwidth of a downloading
// peer (zero for other schemes and for peers with nothing finished).
func (s *sim) virtualUpload(p *peer) float64 {
	if s.cfg.Scheme != CMFSD || p.class == 1 || p.finished == 0 || p.seeding || p.vsQuit {
		return 0
	}
	return (1 - p.rho) * p.mu
}

// legWeight is the download-capacity weight of one downloading leg for
// splitting seed service (assumption 2): the peer's class weight, divided
// across its legs under the concurrent schemes.
func (s *sim) legWeight(p *peer) float64 {
	w := p.weight
	if concurrent(s.cfg.Scheme) {
		w /= float64(p.class)
	}
	return w
}

// The per-event rate pass in stepOnce assembles every downloading leg's
// service rate from the two fluid-model sources (tit-for-tat η·ownUpload;
// seed-like capacity split by download weight) and refreshes each peer's
// virtual-seed receive rate for the Adapt Δ accounting. Rates are
// recomputed from scratch every event in a fixed summation order: the
// fluid coupling makes every rate depend on the whole population, and the
// goldens pin the exact floating-point operation order.

// populations counts downloading and seeding legs (a CMFSD real seed counts
// as one seeding leg) by scanning. The event loop uses the incrementally
// maintained dlCount/seedCount instead; this scan remains as the oracle the
// consistency tests compare the counters against.
func (s *sim) populations() (dl, seeds int) {
	for _, p := range s.peers {
		if p.seeding {
			seeds++
			continue
		}
		for i := range p.legs {
			switch p.legs[i].state {
			case legDownloading:
				dl++
			case legSeeding:
				seeds++
			}
		}
	}
	return dl, seeds
}

const never = math.MaxFloat64

// run is the main event loop.
func (s *sim) run() {
	if !s.init() {
		return
	}
	for s.stepOnce() {
	}
}

// init seeds the flash crowd and arms the recurring timers. It reports
// whether the event loop should run at all.
func (s *sim) init() bool {
	s.lambdaTot = s.corr.TotalUserRate()
	if s.lambdaTot <= 0 {
		return false
	}
	for i := 0; i < s.cfg.FlashCrowd; i++ {
		s.admit(s.newPeer())
	}
	s.nextSample = never
	if s.cfg.SampleEvery > 0 {
		s.res.Trace = trace.NewRecorder()
		s.samplePopulations()
		s.nextSample = s.cfg.SampleEvery
	}
	s.nextArrival = s.rng.Exp(s.lambdaTot)
	s.nextAdapt = never
	if s.cfg.Scheme == CMFSD && s.cfg.Adapt != nil {
		s.nextAdapt = s.cfg.Adapt.Period
	}
	return true
}

// stepOnce processes one event: a fused pass recomputes rates and scans
// the rate-coupled candidates (completions, abort and quit budgets), the
// timer heap supplies the earliest seed departure, then the clock advances
// and the winning event applies. It returns false once the horizon is
// reached.
//
// Candidate selection replicates the former linear scan's tie-breaking
// exactly: that scan kept the first candidate at a strictly smaller time,
// i.e. the lexicographic minimum of (time, scan position), where scan
// position is (source group, peer index, sub-candidate index within the
// peer). The heap orders its entries by the same key, and the strict <
// comparisons below reproduce the group order horizon < arrival < peer
// candidates < adapt < sample.
func (s *sim) stepOnce() bool {
	tNext := s.cfg.Horizon
	kind := evHorizon
	var actor *peer
	var actorLeg int
	// Scan position of the current best when it is a peer candidate;
	// (-1, -1) otherwise, so a seed timer never wins a tie against an
	// earlier source group.
	curPos, curSub := int32(-1), int32(-1)
	if s.nextArrival < tNext {
		tNext, kind = s.nextArrival, evArrival
	}

	eta := s.cfg.Eta
	if s.cfg.Scheme == CMFSD {
		// Pooled seed-like service: virtual seeds plus real seeds,
		// split over all downloaders by weight (Eq. 5's S term; equal
		// weights make it per capita).
		virtPool, realPool, weightSum := 0.0, 0.0, 0.0
		for _, p := range s.peers {
			if p.seeding {
				realPool += p.mu
				continue
			}
			if li := p.downloadingLeg(); li >= 0 {
				weightSum += p.weight
				virtPool += s.virtualUpload(p)
			}
		}
		for pos, p := range s.peers {
			p.virtDownRate = 0
			if p.seeding {
				continue // departure timer lives in the heap
			}
			li := p.downloadingLeg()
			if li < 0 {
				continue
			}
			share := 0.0
			if weightSum > 0 {
				share = p.weight / weightSum
			}
			l := &p.legs[li]
			l.rate = eta*s.tftUpload(p) + share*(virtPool+realPool)
			p.virtDownRate = share * virtPool
			if l.rate > 0 {
				if tc := s.now + l.remaining/l.rate; tc < tNext {
					tNext, kind, actor, actorLeg = tc, evCompletion, p, li
					curPos, curSub = int32(pos), int32(li)
				}
			}
			if s.plan != nil {
				// Abort and virtual-seed-quit budgets tick only while
				// the matching activity is in progress, so the injected
				// lifetimes are exponential in activity time — the same
				// clock the fluid θ·x term runs on.
				if ta := s.now + p.abortBudget; ta < tNext {
					tNext, kind, actor = ta, evPeerAbort, p
					curPos, curSub = int32(pos), int32(len(p.legs))
				}
				if s.virtualUpload(p) > 0 {
					if tq := s.now + p.vsQuitBudget; tq < tNext {
						tNext, kind, actor = tq, evVsQuit, p
						curPos, curSub = int32(pos), int32(len(p.legs))+1
					}
				}
			}
		}
	} else {
		// Per-torrent accounting for the multi-torrent schemes, into
		// reusable scratch (the former per-event allocations).
		k := s.cfg.K
		if cap(s.seedCapBuf) < k {
			s.seedCapBuf = make([]float64, k)
			s.weightSumBuf = make([]float64, k)
		}
		seedCap := s.seedCapBuf[:k]
		weightSum := s.weightSumBuf[:k]
		for i := range seedCap {
			seedCap[i] = 0
			weightSum[i] = 0
		}
		for _, p := range s.peers {
			p.virtDownRate = 0
			for i := range p.legs {
				l := &p.legs[i]
				switch l.state {
				case legSeeding:
					if s.cfg.Scheme == MTSD {
						seedCap[l.torrent] += p.mu
					} else {
						seedCap[l.torrent] += p.mu / float64(p.class)
					}
				case legDownloading:
					weightSum[l.torrent] += s.legWeight(p)
				}
			}
		}
		for pos, p := range s.peers {
			anyDl := false
			for i := range p.legs {
				l := &p.legs[i]
				if l.state != legDownloading {
					continue // seeding-leg timers live in the heap
				}
				anyDl = true
				r := eta * s.tftUpload(p)
				if weightSum[l.torrent] > 0 {
					r += s.legWeight(p) / weightSum[l.torrent] * seedCap[l.torrent]
				}
				l.rate = r
				if r > 0 {
					if tc := s.now + l.remaining/r; tc < tNext {
						tNext, kind, actor, actorLeg = tc, evCompletion, p, i
						curPos, curSub = int32(pos), int32(i)
					}
				}
			}
			if s.plan != nil && anyDl {
				if ta := s.now + p.abortBudget; ta < tNext {
					tNext, kind, actor = ta, evPeerAbort, p
					curPos, curSub = int32(pos), int32(len(p.legs))
				}
			}
		}
	}

	if h, ok := s.timers.min(); ok {
		if h.at < tNext ||
			(h.at == tNext && (h.p.pos < curPos || (h.p.pos == curPos && h.sub < curSub))) {
			tNext, actor = h.at, h.p
			if s.cfg.Scheme == CMFSD {
				kind = evPeerDepart
			} else {
				kind, actorLeg = evLegDepart, int(h.sub)
			}
		}
	}
	if s.nextAdapt < tNext {
		tNext, kind = s.nextAdapt, evAdapt
	}
	if s.nextSample < tNext {
		tNext, kind = s.nextSample, evSample
	}

	s.advance(tNext)

	switch kind {
	case evHorizon:
		return false
	case evArrival:
		s.admit(s.newPeer())
		s.nextArrival = s.now + s.rng.Exp(s.lambdaTot)
	case evCompletion:
		s.completeLeg(actor, actorLeg)
	case evLegDepart:
		s.timers.pop()
		actor.legs[actorLeg].state = legDone
		s.seedCount--
		s.afterLegDeparture(actor, actorLeg)
	case evPeerDepart:
		s.timers.pop()
		s.departPeer(actor)
	case evPeerAbort:
		actor.aborted = true
		s.plan.NoteAbort()
		s.departPeer(actor)
	case evVsQuit:
		actor.vsQuit = true
		s.res.SeedQuits++
		s.plan.NoteSeedQuit()
	case evAdapt:
		s.adaptTick()
		s.nextAdapt = s.now + s.cfg.Adapt.Period
	case evSample:
		s.samplePopulations()
		s.nextSample = s.now + s.cfg.SampleEvery
	}
	return true
}

// samplePopulations records the current leg populations into the trace.
func (s *sim) samplePopulations() {
	dl, seeds := s.dlCount, s.seedCount
	// Errors are impossible here: the clock is monotone.
	_ = s.res.Trace.Record("downloaders", s.now, float64(dl))
	_ = s.res.Trace.Record("seeds", s.now, float64(seeds))
}

type eventKind int

const (
	evHorizon eventKind = iota
	evArrival
	evCompletion
	evLegDepart
	evPeerDepart
	evPeerAbort
	evVsQuit
	evAdapt
	evSample
)

// advance moves simulated time to tNext, integrating progress and
// accumulators.
func (s *sim) advance(tNext float64) {
	dt := tNext - s.now
	if dt < 0 {
		dt = 0
	}
	if dt > 0 {
		for _, p := range s.peers {
			if p.seeding {
				continue
			}
			anyDl := false
			for i := range p.legs {
				l := &p.legs[i]
				if l.state != legDownloading {
					continue
				}
				anyDl = true
				l.remaining -= l.rate * dt
				if l.remaining < 0 {
					l.remaining = 0
				}
			}
			if anyDl {
				p.dlAccum += dt
				p.abortBudget -= dt
				if vu := s.virtualUpload(p); vu > 0 {
					p.virtUp += vu * dt
					p.vsQuitBudget -= dt
				}
				p.virtDown += p.virtDownRate * dt
			}
		}
	}
	if tNext >= s.cfg.Warmup {
		obsAt := math.Max(s.now, s.cfg.Warmup)
		dl, seeds := s.dlCount, s.seedCount
		if !s.statsBegan {
			s.statsBegan = true
		}
		s.dlPop.Observe(obsAt-s.cfg.Warmup, float64(dl))
		s.seedPop.Observe(obsAt-s.cfg.Warmup, float64(seeds))
	}
	s.now = tNext
}

// completeLeg handles a finished file download.
func (s *sim) completeLeg(p *peer, li int) {
	l := &p.legs[li]
	l.remaining = 0
	p.finished++
	p.lastCompletionAt = s.now
	switch s.cfg.Scheme {
	case MTCD, MFCD:
		l.state = legSeeding
		l.seedDepartAt = s.now + s.rng.Exp(s.cfg.Gamma)
		s.dlCount--
		s.seedCount++
		s.timers.push(l.seedDepartAt, p, int32(li))
	case MTSD:
		l.state = legSeeding
		l.seedDepartAt = s.now + s.rng.Exp(s.cfg.Gamma)
		s.dlCount--
		s.seedCount++
		s.timers.push(l.seedDepartAt, p, int32(li))
		// The next file starts only after this seeding phase
		// (sequential: download, seed, move on).
	case CMFSD:
		l.state = legDone
		s.dlCount--
		if p.finished == p.class {
			p.seeding = true
			p.seedDepartAt = s.now + s.rng.Exp(s.cfg.Gamma)
			s.seedCount++
			s.timers.push(p.seedDepartAt, p, 0)
		} else {
			p.cursor++
			p.legs[p.cursor].state = legDownloading
			s.dlCount++
		}
	}
}

// afterLegDeparture resumes a sequential peer or retires a concurrent one.
func (s *sim) afterLegDeparture(p *peer, li int) {
	if s.cfg.Scheme == MTSD {
		if li == p.cursor && p.cursor+1 < len(p.legs) {
			p.cursor++
			p.legs[p.cursor].state = legDownloading
			s.dlCount++
			return
		}
	}
	for i := range p.legs {
		if p.legs[i].state != legDone {
			return
		}
	}
	s.departPeer(p)
}

// departPeer removes the peer and records its statistics.
func (s *sim) departPeer(dead *peer) {
	// Population counters and pending seed timers for whatever the peer
	// leaves behind (an abort can retire seeding legs mid-flight; a fired
	// departure timer was already popped, so remove is a no-op for it).
	if dead.seeding {
		s.seedCount--
		s.timers.remove(dead, 0)
	}
	for i := range dead.legs {
		switch dead.legs[i].state {
		case legDownloading:
			s.dlCount--
		case legSeeding:
			s.seedCount--
			s.timers.remove(dead, int32(i))
		}
	}
	// Swap-remove from the peer list; the moved peer's position key
	// decreased, so its pending timers re-sift in the heap.
	i := int(dead.pos)
	last := len(s.peers) - 1
	moved := s.peers[last]
	s.peers[i] = moved
	s.peers = s.peers[:last]
	if moved != dead {
		moved.pos = int32(i)
		s.timers.fixPos(moved)
	}
	if !dead.counted {
		return
	}
	online := s.now - dead.arrivalAt
	download := dead.dlAccum
	cs := &s.res.Classes[dead.class-1]
	if dead.aborted {
		s.res.AbortedUsers++
	} else {
		cs.Completed++
		s.res.CompletedUsers++
	}
	cs.OnlineTime.Add(online)
	cs.DownloadTime.Add(download)
	if dead.bwClass >= 0 && dead.bwClass < len(s.res.Bandwidth) {
		bs := &s.res.Bandwidth[dead.bwClass]
		if !dead.aborted {
			bs.Completed++
		}
		bs.OnlineTime.Add(online)
		bs.DownloadTime.Add(download)
	}
	s.sumOnline += online
	s.sumDownload += download
	// Per-file averages divide by torrent entries, matching the fluid
	// model's x/λ Little's-law accounting: an aborted sequential user
	// charges only the files it actually started — torrents never entered
	// contribute neither time nor a file. Completed users (and aborted
	// concurrent ones, whose legs all start at arrival) charge the full
	// class size.
	files := dead.class
	if dead.aborted {
		files = 0
		for i := range dead.legs {
			if dead.legs[i].state != legWaiting {
				files++
			}
		}
	}
	s.sumFiles += files
	if s.cfg.Scheme == CMFSD && dead.class > 1 {
		s.res.FinalRho.Add(dead.rho)
	}
}

// adaptTick runs the Adapt controller on every eligible peer.
func (s *sim) adaptTick() {
	period := s.cfg.Adapt.Period
	for _, p := range s.peers {
		if p.ctrl == nil || p.seeding {
			p.virtUp, p.virtDown = 0, 0
			continue
		}
		if p.finished >= 1 && p.class > 1 {
			delta := (p.virtUp - p.virtDown) / period
			p.rho = p.ctrl.Observe(delta)
		}
		p.virtUp, p.virtDown = 0, 0
	}
}

// finish computes the aggregate metrics. Peers still in flight at the
// horizon are censored (not counted).
func (s *sim) finish() {
	if s.sumFiles > 0 {
		s.res.AvgOnlinePerFile = s.sumOnline / float64(s.sumFiles)
		s.res.AvgDownloadPerFile = s.sumDownload / float64(s.sumFiles)
	} else {
		s.res.AvgOnlinePerFile = math.NaN()
		s.res.AvgDownloadPerFile = math.NaN()
	}
	span := s.cfg.Horizon - s.cfg.Warmup
	s.res.MeanDownloaders = s.dlPop.MeanUntil(span)
	s.res.MeanSeeds = s.seedPop.MeanUntil(span)
}
