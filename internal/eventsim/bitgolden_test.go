package eventsim

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mfdl/internal/adapt"
	"mfdl/internal/faults"
)

var updateBitGolden = flag.Bool("update-bitgolden", false, "rewrite the bit-exact simulator goldens")

// bitGoldenCases spans every scheme, fault injection, the Adapt
// controller, heterogeneous bandwidth classes, flash crowds and trace
// sampling. The digests pin the simulator bit-for-bit: any change to RNG
// draw order, float arithmetic order, peer iteration order or event
// tie-breaking shows up here before it reaches the experiment goldens.
func bitGoldenCases() map[string]Config {
	adaptCfg := adapt.Config{
		Lower: -0.3, Upper: 0.3, StepUp: 0.25, StepDown: 0.25,
		Period: 10, InitialRho: 0, Consecutive: 1,
	}
	chaos := faults.Config{
		Seed:         11,
		AbortRate:    0.01,
		SeedQuitRate: 0.05,

		SlowPeerFraction: 0.2,
		SlowFactor:       0.5,
	}
	mk := func(scheme Scheme, mutate func(*Config)) Config {
		c := baseConfig(scheme)
		c.Horizon = 1200
		c.Warmup = 200
		c.P = 0.9
		if mutate != nil {
			mutate(&c)
		}
		return c
	}
	return map[string]Config{
		"mtcd": mk(MTCD, nil),
		"mtsd": mk(MTSD, nil),
		"mfcd": mk(MFCD, nil),
		"cmfsd-rho05": mk(CMFSD, func(c *Config) {
			c.Rho = 0.5
		}),
		"cmfsd-adapt-cheaters": mk(CMFSD, func(c *Config) {
			c.Adapt = &adaptCfg
			c.CheaterFraction = 0.3
		}),
		"mtsd-faults": mk(MTSD, func(c *Config) {
			c.Faults = chaos
		}),
		"cmfsd-faults": mk(CMFSD, func(c *Config) {
			c.Rho = 0.4
			c.Faults = chaos
		}),
		"mtcd-bandwidth": mk(MTCD, func(c *Config) {
			c.Bandwidth = []BandwidthClass{
				{Name: "slow", Mu: 0.1, Weight: 1, Fraction: 0.5},
				{Name: "fast", Mu: 0.4, Weight: 2, Fraction: 0.5},
			}
		}),
		"cmfsd-flash-trace": mk(CMFSD, func(c *Config) {
			c.FlashCrowd = 50
			c.SampleEvery = 5
			c.Horizon = 600
			c.Warmup = 100
		}),
	}
}

func digestResult(r *Result) string {
	b := func(v float64) string {
		return fmt.Sprintf("%016x", math.Float64bits(v))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "arrived=%d completed=%d aborted=%d seedquits=%d",
		r.ArrivedUsers, r.CompletedUsers, r.AbortedUsers, r.SeedQuits)
	fmt.Fprintf(&sb, " online=%s dl=%s meandl=%s meansd=%s rho=%s rhon=%d",
		b(r.AvgOnlinePerFile), b(r.AvgDownloadPerFile),
		b(r.MeanDownloaders), b(r.MeanSeeds), b(r.FinalRho.Mean()), r.FinalRho.N())
	for _, cs := range r.Classes {
		fmt.Fprintf(&sb, " c%d=%d/%s/%s", cs.Class, cs.Completed,
			b(cs.OnlineTime.Mean()), b(cs.DownloadTime.Mean()))
	}
	for _, bw := range r.Bandwidth {
		fmt.Fprintf(&sb, " bw:%s=%d/%s/%s", bw.Name, bw.Completed,
			b(bw.OnlineTime.Mean()), b(bw.DownloadTime.Mean()))
	}
	if r.Trace != nil {
		for _, name := range []string{"downloaders", "seeds"} {
			s := r.Trace.Series(name)
			sum := 0.0
			for _, v := range s.V {
				sum += v
			}
			fmt.Fprintf(&sb, " %s=%d/%s", name, s.Len(), b(sum))
		}
	}
	return sb.String()
}

// TestBitGolden pins the flow-level simulator bit-for-bit across the
// configuration matrix. Regenerate (a reviewed act) with
// go test ./internal/eventsim -run BitGolden -update-bitgolden.
func TestBitGolden(t *testing.T) {
	cases := bitGoldenCases()
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	var sb strings.Builder
	for _, name := range names {
		res, err := Run(cases[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(&sb, "%s: %s\n", name, digestResult(res))
	}
	got := sb.String()
	path := filepath.Join("testdata", "bitgolden.txt")
	if *updateBitGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing bit golden (run with -update-bitgolden): %v", err)
	}
	if got != string(want) {
		t.Errorf("bit-exact simulator golden drifted.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
