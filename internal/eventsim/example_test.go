package eventsim_test

import (
	"fmt"
	"log"

	"mfdl/internal/eventsim"
	"mfdl/internal/fluid"
	"mfdl/internal/scheme"
)

// Simulate MTSD on a 10-file system and compare against the fluid closed
// form T + 1/γ = 8 (time-rescaled paper parameters).
func ExampleRun() {
	res, err := eventsim.Run(eventsim.Config{
		Params:  fluid.Params{Mu: 0.2, Eta: 0.5, Gamma: 0.5},
		K:       10,
		Lambda0: 1,
		P:       1,
		Scheme:  scheme.SimMTSD,
		Horizon: 4000,
		Warmup:  800,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within 15%% of fluid: %v\n",
		res.AvgOnlinePerFile > 8*0.85 && res.AvgOnlinePerFile < 8*1.15)
	// Output:
	// within 15% of fluid: true
}
