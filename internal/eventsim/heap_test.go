package eventsim

import (
	"testing"

	"mfdl/internal/correlation"
	"mfdl/internal/faults"
	"mfdl/internal/rng"
)

// checkHeapInvariant verifies the min-heap property and the index
// back-pointers.
func checkHeapInvariant(t *testing.T, h *timerHeap) {
	t.Helper()
	for i := range h.e {
		if left := 2*i + 1; left < len(h.e) && h.less(left, i) {
			t.Fatalf("heap violation at %d/%d", i, left)
		}
		if right := 2*i + 2; right < len(h.e) && h.less(right, i) {
			t.Fatalf("heap violation at %d/%d", i, right)
		}
		e := &h.e[i]
		if e.p.heapIdx[e.sub] != int32(i) {
			t.Fatalf("stale heapIdx for entry %d: %d", i, e.p.heapIdx[e.sub])
		}
	}
}

// TestTimerHeapRandomOps drives the heap with randomized pushes, pops,
// removals and position re-keys, comparing its minimum against a naive
// scan model after each operation.
func TestTimerHeapRandomOps(t *testing.T) {
	src := rng.New(99)
	h := &timerHeap{}
	type modelPeer struct {
		p  *peer
		at []float64 // model's own copy of each pending time
	}
	var peers []*modelPeer
	// Model: the set of live entries, found by scanning all peers.
	scanMin := func() (seedTimer, bool) {
		best := seedTimer{}
		found := false
		for _, m := range peers {
			p := m.p
			for sub := range p.heapIdx {
				if p.heapIdx[sub] < 0 {
					continue
				}
				e := seedTimer{at: m.at[sub], p: p, sub: int32(sub)}
				if !found {
					best, found = e, true
					continue
				}
				if e.at < best.at ||
					(e.at == best.at && (e.p.pos < best.p.pos ||
						(e.p.pos == best.p.pos && e.sub < best.sub))) {
					best = e
				}
			}
		}
		return best, found
	}
	newModelPeer := func() *modelPeer {
		legs := 1 + src.Intn(4)
		p := &peer{pos: int32(len(peers)), heapIdx: make([]int32, legs)}
		for i := range p.heapIdx {
			p.heapIdx[i] = -1
		}
		m := &modelPeer{p: p, at: make([]float64, legs)}
		peers = append(peers, m)
		return m
	}
	for i := 0; i < 20; i++ {
		newModelPeer()
	}
	for step := 0; step < 5000; step++ {
		switch op := src.Intn(10); {
		case op < 4: // push a new timer on a random free (peer, sub)
			m := peers[src.Intn(len(peers))]
			sub := int32(src.Intn(len(m.p.heapIdx)))
			if m.p.heapIdx[sub] >= 0 {
				continue
			}
			// Coarse times force frequent ties to exercise tie-breaking.
			at := float64(src.Intn(8))
			m.at[sub] = at
			h.push(at, m.p, sub)
		case op < 6: // pop the minimum
			if len(h.e) > 0 {
				h.pop()
			}
		case op < 8: // remove a random entry (fired abort semantics)
			m := peers[src.Intn(len(peers))]
			sub := int32(src.Intn(len(m.p.heapIdx)))
			h.remove(m.p, sub)
		default: // simulate a swap-remove: last peer moves earlier
			if len(peers) < 2 {
				continue
			}
			i := src.Intn(len(peers) - 1)
			last := len(peers) - 1
			moved := peers[last]
			// Drop peers[i]'s entries first, as departPeer does.
			for sub := range peers[i].p.heapIdx {
				h.remove(peers[i].p, int32(sub))
			}
			peers[i] = moved
			peers = peers[:last]
			moved.p.pos = int32(i)
			h.fixPos(moved.p)
			newModelPeer() // keep the population from draining
		}
		checkHeapInvariant(t, h)
		want, wantOK := scanMin()
		got, gotOK := h.min()
		if wantOK != gotOK {
			t.Fatalf("step %d: min presence mismatch: model %v heap %v", step, wantOK, gotOK)
		}
		if gotOK && (got.p != want.p || got.sub != want.sub || got.at != want.at) {
			t.Fatalf("step %d: heap min (%v,%d,%v) != model min (%v,%d,%v)",
				step, got.p.pos, got.sub, got.at, want.p.pos, want.sub, want.at)
		}
	}
}

// TestPopulationCountersMatchScan runs full simulations and checks the
// incrementally maintained population counters against the populations()
// scan after every event.
func TestPopulationCountersMatchScan(t *testing.T) {
	for _, scheme := range []Scheme{MTCD, MTSD, MFCD, CMFSD} {
		cfg := baseConfig(scheme)
		cfg.Horizon = 400
		cfg.Warmup = 50
		cfg.Faults.Seed = 3
		cfg.Faults.AbortRate = 0.01
		if scheme == CMFSD {
			cfg.Rho = 0.4
			cfg.Faults.SeedQuitRate = 0.05
		}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		corr, err := correlation.New(cfg.K, cfg.P, cfg.Lambda0)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := faults.NewPlan(cfg.Faults.Mixed(cfg.Seed), nil)
		if err != nil {
			t.Fatal(err)
		}
		s := &sim{
			cfg:  cfg,
			corr: corr,
			rng:  rng.New(cfg.Seed),
			plan: plan,
			res:  &Result{Config: cfg, Classes: make([]ClassStats, cfg.K)},
		}
		for i := range s.res.Classes {
			s.res.Classes[i].Class = i + 1
		}
		if !s.init() {
			t.Fatalf("%v: event loop refused to start", scheme)
		}
		events := 0
		for s.stepOnce() {
			events++
			dl, seeds := s.populations()
			if dl != s.dlCount || seeds != s.seedCount {
				t.Fatalf("%v event %d: counters (%d,%d) != scan (%d,%d)",
					scheme, events, s.dlCount, s.seedCount, dl, seeds)
			}
		}
		if events == 0 {
			t.Fatalf("%v: no events processed", scheme)
		}
	}
}
