// Package replica is the replica engine behind every simulator-backed
// number in the repository: it fans R independently seeded replicas of
// each simulation cell out over the runner's worker pool and reduces the
// per-replica samples into mean / 95% confidence interval / min / max per
// metric.
//
// A single simulation trajectory is one draw from the stochastic system,
// so a fluid-vs-simulation comparison based on it has no error bars. The
// engine turns any seedable simulation — anything implementing Sim, which
// both internal/eventsim and internal/swarm do — into a replicated
// estimate:
//
//	aggs, err := replica.Run(ctx, len(specs), func(cell int) replica.Sim {
//	    cfg := ... // the cell's simulator configuration
//	    return eventsim.Sim{Config: cfg}
//	}, replica.Options{Replicas: 8, Seed: 1})
//	mean := aggs[0].Mean(replica.OnlinePerFile)
//	ci   := aggs[0].CI95(replica.OnlinePerFile)
//
// # Seed derivation
//
// Replica seeds are a pure function of (base seed, cell index, replica
// index), untouched by scheduling or worker count:
//
//   - cell i owns the i-th Split of the base seed's stream (the same
//     scheme internal/runner uses for per-cell streams);
//   - replica 0 of every cell runs at the base seed itself, so R = 1
//     reproduces the unreplicated run byte-for-byte;
//   - replica j >= 1 runs at the j-th Uint64 drawn from the cell's split
//     stream.
//
// Growing R therefore extends a smaller run: the first replicas of an
// R = 8 run are seeded identically to an R = 4 run.
//
// # Determinism
//
// All cells × replicas execute on one bounded runner pool; samples are
// reduced in (cell, replica) order with sorted metric keys, so the output
// is byte-identical at any worker count for fixed (seed, R).
package replica

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"mfdl/internal/obs"
	"mfdl/internal/rng"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/stats"
)

// Standard metric keys the simulators emit. Experiments address aggregate
// metrics by these names instead of reaching into simulator result
// structs.
const (
	// OnlinePerFile is the paper's headline metric: average online time
	// (rounds, for the chunk-level simulator) per requested file.
	OnlinePerFile = "online_per_file"
	// DownloadPerFile is the same aggregation over pure download time.
	DownloadPerFile = "download_per_file"
	// MeanDownloaders / MeanSeeds are time-averaged populations.
	MeanDownloaders = "mean_downloaders"
	MeanSeeds       = "mean_seeds"
	// FinalRho is the mean final allocation ratio of CMFSD peers (as a
	// value: the per-run mean; as a summary: the per-peer distribution).
	FinalRho = "final_rho"
	// Completed and Arrived are post-warmup user counts (Counts keys).
	Completed = "completed"
	Arrived   = "arrived"
	// Aborted and SeedQuits count fault-injected churn events (Counts
	// keys): users who left mid-download and virtual seeds that quit.
	Aborted   = "aborted"
	SeedQuits = "seed_quits"
)

// ClassKey names a per-class metric, e.g. ClassKey(3, OnlinePerFile).
func ClassKey(class int, metric string) string {
	return fmt.Sprintf("class/%d/%s", class, metric)
}

// BandwidthKey names a per-bandwidth-class metric.
func BandwidthKey(name, metric string) string {
	return fmt.Sprintf("bw/%s/%s", name, metric)
}

// Sample is one replica's output: named scalar metrics (one number per
// replica — the engine reports their across-replica distribution), counts
// (summed across replicas) and within-run summaries (merged across
// replicas via stats.Summary.Merge).
type Sample struct {
	Values    map[string]float64
	Counts    map[string]float64
	Summaries map[string]stats.Summary
}

// Rep identifies one replica of one cell together with its derived seed.
type Rep struct {
	// Cell is the cell index in [0, cells).
	Cell int
	// Replica is the replica index in [0, R).
	Replica int
	// Seed is the replica's simulator seed under the package's seed-
	// derivation scheme.
	Seed uint64
}

// Sim runs one independently seeded replica of a simulation. The
// implementations in internal/eventsim and internal/swarm rerun a fixed
// configuration at the given seed.
type Sim interface {
	Simulate(ctx context.Context, r Rep) (Sample, error)
}

// SimFunc adapts a function to Sim.
type SimFunc func(ctx context.Context, r Rep) (Sample, error)

// Simulate implements Sim.
func (f SimFunc) Simulate(ctx context.Context, r Rep) (Sample, error) {
	return f(ctx, r)
}

// Options configure one Run.
type Options struct {
	// Replicas is R, the number of independently seeded replicas per
	// cell; 0 means 1. Negative values are an error.
	Replicas int
	// Workers bounds the shared worker pool; <= 0 means all cores.
	Workers int
	// Seed is the base seed of the derivation scheme.
	Seed uint64
	// Hooks observe per-(cell, replica) progress.
	Hooks runner.Hooks
	// Obs, when non-nil, instruments the run: a replica_simulate_seconds
	// histogram per (cell, replica) Simulate, a replica_reduce_seconds
	// histogram per cell reduction, and — with a span sink attached —
	// "simulate" and "reduce" phase spans labeled with cell/replica
	// indices. The registry is also passed down to the runner pool. Nil
	// disables instrumentation (no clock reads, no allocations).
	Obs *obs.Registry
	// Samples, when non-nil together with SampleKey, persists every
	// computed replica sample under (SampleKey(cell), seed) and replays
	// stored samples instead of simulating them. Because a sample is a
	// pure function of its configuration and seed, and growing R only
	// appends seeds (see Seeds), a re-run with a larger replica count
	// reuses every earlier sample — R grows, it never resamples.
	Samples *diskcache.SampleStore
	// SampleKey names cell's sample-store identity: everything that
	// determines the cell's samples except the seed (typically a
	// fingerprint of the simulator configuration). Required for Samples to
	// take effect.
	SampleKey func(cell int) string
}

// replicas normalizes the replica count.
func (o Options) replicas() int {
	if o.Replicas <= 0 {
		return 1
	}
	return o.Replicas
}

// Agg is the reduction of one cell's R replica samples.
type Agg struct {
	// Replicas is the number of samples reduced.
	Replicas int
	// Values holds, per scalar metric, the across-replica distribution:
	// N = R, and Mean/CI95/Min/Max estimate the metric with error bars.
	Values map[string]stats.Summary
	// Counts holds the across-replica sums of the counting metrics.
	Counts map[string]float64
	// Summaries holds the within-run summaries pooled over all replicas.
	Summaries map[string]stats.Summary
}

// Value returns the across-replica distribution of a scalar metric (the
// zero Summary when the metric was never emitted).
func (a Agg) Value(key string) stats.Summary { return a.Values[key] }

// Mean returns the across-replica mean of a scalar metric.
func (a Agg) Mean(key string) float64 {
	s := a.Values[key]
	return s.Mean()
}

// CI95 returns the half-width of the 95% confidence interval of a scalar
// metric's mean (0 when R < 2).
func (a Agg) CI95(key string) float64 {
	s := a.Values[key]
	return s.CI95()
}

// Count returns the across-replica sum of a counting metric.
func (a Agg) Count(key string) float64 { return a.Counts[key] }

// Summary returns the pooled within-run summary of a metric.
func (a Agg) Summary(key string) stats.Summary { return a.Summaries[key] }

// Seeds returns the replica seeds of every cell under base: element
// [i][j] seeds replica j of cell i. The scheme is documented in the
// package comment (and DESIGN.md); in particular [i][0] == base for every
// cell, and for fixed base the first columns do not move as r grows.
func Seeds(base uint64, cells, r int) [][]uint64 {
	if cells < 0 || r < 1 {
		panic(fmt.Sprintf("replica: Seeds(cells=%d, r=%d)", cells, r))
	}
	parent := rng.New(base)
	out := make([][]uint64, cells)
	for i := range out {
		src := parent.Split()
		out[i] = make([]uint64, r)
		out[i][0] = base
		for j := 1; j < r; j++ {
			out[i][j] = src.Uint64()
		}
	}
	return out
}

// Run executes R replicas of each of cells simulations over one bounded
// worker pool and reduces each cell's samples into an Agg. sim is called
// once per cell (serially, before any replica starts) to obtain the
// cell's simulator; the same Sim value then receives all R Simulate
// calls, possibly concurrently, so implementations must treat their
// configuration as immutable.
//
// The result is indexed like the cells and byte-identical at any worker
// count. The first error (by flattened (cell, replica) index) cancels the
// remaining replicas and is returned.
func Run(ctx context.Context, cells int, sim func(cell int) Sim, opts Options) ([]Agg, error) {
	if opts.Replicas < 0 {
		return nil, fmt.Errorf("replica: Replicas = %d must be >= 0", opts.Replicas)
	}
	if cells < 0 {
		return nil, fmt.Errorf("replica: cells = %d must be >= 0", cells)
	}
	if cells == 0 {
		return nil, ctx.Err()
	}
	r := opts.replicas()
	seeds := Seeds(opts.Seed, cells, r)
	sims := make([]Sim, cells)
	for i := range sims {
		sims[i] = sim(i)
		if sims[i] == nil {
			return nil, fmt.Errorf("replica: sim(%d) returned nil", i)
		}
	}
	grid, err := runner.Indexed("job", cells*r)
	if err != nil {
		return nil, err
	}
	ob := opts.Obs
	samples, err := runner.Run(ctx, grid,
		func(ctx context.Context, pt runner.Point, _ *rng.Source) (Sample, error) {
			cell, rep := pt.Index/r, pt.Index%r
			return simulateOne(ctx, sims[cell], Rep{Cell: cell, Replica: rep, Seed: seeds[cell][rep]}, opts)
		}, runner.Options{Workers: opts.Workers, Seed: opts.Seed, Hooks: opts.Hooks, Obs: ob})
	if err != nil {
		return nil, err
	}
	reduceSeconds := ob.Histogram("replica_reduce_seconds", obs.LatencyBuckets)
	tracing := ob.Tracing()
	out := make([]Agg, cells)
	for i := range out {
		var (
			redStart time.Time
			sp       obs.Span
		)
		if ob != nil {
			redStart = time.Now()
			if tracing {
				sp = ob.StartSpan("reduce", obs.L("cell", strconv.Itoa(i)))
			}
		}
		out[i] = reduce(samples[i*r : (i+1)*r])
		if ob != nil {
			reduceSeconds.Since(redStart)
			sp.End()
		}
	}
	return out, nil
}

// simulateOne runs — or replays from the sample store — one replica of one
// cell: the single path every executor (Run, RunSequential, the fabric's
// sim-replica kind via SimulateStored) shares, so a sample is computed the
// same way no matter which engine asked for it.
func simulateOne(ctx context.Context, s Sim, r Rep, opts Options) (Sample, error) {
	key := ""
	if opts.Samples != nil && opts.SampleKey != nil {
		key = opts.SampleKey(r.Cell)
	}
	return SimulateStored(ctx, s, r, key, opts.Samples, opts.Obs)
}

// SimulateStored runs one replica through the sample store: a stored
// sample under (key, r.Seed) is decoded and returned without simulating;
// otherwise the simulation runs and its encoded sample is persisted
// (best-effort) before returning. An empty key or nil store disables the
// store entirely. A stored payload that fails to decode — corrupt, or
// written under another sample schema — reads as a miss and is recomputed.
func SimulateStored(ctx context.Context, s Sim, r Rep, key string, store *diskcache.SampleStore, ob *obs.Registry) (Sample, error) {
	if store != nil && key != "" {
		if payload, ok := store.Get(key, r.Seed); ok {
			if sample, err := DecodeSample(payload); err == nil {
				return sample, nil
			}
		}
	}
	var (
		simStart time.Time
		sp       obs.Span
	)
	if ob != nil {
		simStart = time.Now()
		if ob.Tracing() {
			sp = ob.StartSpan("simulate",
				obs.L("cell", strconv.Itoa(r.Cell)), obs.L("replica", strconv.Itoa(r.Replica)))
		}
	}
	sample, err := s.Simulate(ctx, r)
	if ob != nil {
		ob.Histogram("replica_simulate_seconds", obs.LatencyBuckets).Since(simStart)
		sp.End()
	}
	if err != nil {
		return Sample{}, fmt.Errorf("cell %d replica %d (seed %d): %w", r.Cell, r.Replica, r.Seed, err)
	}
	if store != nil && key != "" {
		if payload, err := EncodeSample(sample); err == nil {
			_ = store.Put(key, r.Seed, payload)
		}
	}
	return sample, nil
}

// reduce folds one cell's samples, in replica order, into an Agg.
// Iteration is over the sorted union of keys so the reduction itself is
// deterministic regardless of map layout.
func reduce(samples []Sample) Agg {
	agg := Agg{
		Replicas:  len(samples),
		Values:    map[string]stats.Summary{},
		Counts:    map[string]float64{},
		Summaries: map[string]stats.Summary{},
	}
	for _, key := range keyUnion(samples, func(s Sample) map[string]float64 { return s.Values }) {
		var sum stats.Summary
		for _, s := range samples {
			if v, ok := s.Values[key]; ok {
				sum.Add(v)
			}
		}
		agg.Values[key] = sum
	}
	for _, key := range keyUnion(samples, func(s Sample) map[string]float64 { return s.Counts }) {
		total := 0.0
		for _, s := range samples {
			total += s.Counts[key]
		}
		agg.Counts[key] = total
	}
	for _, key := range keyUnion(samples, func(s Sample) map[string]stats.Summary { return s.Summaries }) {
		var merged stats.Summary
		for _, s := range samples {
			if o, ok := s.Summaries[key]; ok {
				merged.Merge(&o)
			}
		}
		agg.Summaries[key] = merged
	}
	return agg
}

// keyUnion returns the sorted union of the map keys across samples.
func keyUnion[V any](samples []Sample, get func(Sample) map[string]V) []string {
	seen := map[string]bool{}
	var keys []string
	for _, s := range samples {
		for k := range get(s) {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}
