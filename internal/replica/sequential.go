package replica

import (
	"context"
	"fmt"

	"mfdl/internal/rng"
	"mfdl/internal/runner"
)

// Stopping configures sequential stopping: per cell, the replica count
// grows (doubling, bounded by MaxReplicas) until the 95% confidence
// half-width of the named scalar metric reaches Target. A zero Target or
// empty Metric disables stopping, making RunSequential identical to Run.
type Stopping struct {
	// Metric is the scalar metric (a Sample.Values key, e.g.
	// OnlinePerFile) whose confidence interval drives the stopping rule. A
	// cell that never emits the metric counts as converged.
	Metric string
	// Target is the CI95 half-width at which a cell stops growing;
	// <= 0 disables stopping.
	Target float64
	// MaxReplicas bounds the growth per cell. Values below the starting
	// replica count are raised to it.
	MaxReplicas int
}

// Enabled reports whether the rule actually stops anything.
func (st Stopping) Enabled() bool { return st.Target > 0 && st.Metric != "" }

// RunSequential is Run with sequential stopping layered on top: every cell
// starts at the configured replica count (at least 2, so a CI exists),
// and after each round the cells whose CI95(stop.Metric) still exceeds
// stop.Target double their replica count — bounded by stop.MaxReplicas —
// and only the missing replicas are simulated. Because replica seeds are a
// pure function of (base seed, cell, replica index) and samples are
// reduced in replica order, the result is byte-identical at any worker
// count, and with a sample store attached (Options.Samples) every round —
// and every later re-run — reuses the samples already drawn.
func RunSequential(ctx context.Context, cells int, sim func(cell int) Sim, opts Options, stop Stopping) ([]Agg, error) {
	if !stop.Enabled() {
		return Run(ctx, cells, sim, opts)
	}
	if opts.Replicas < 0 {
		return nil, fmt.Errorf("replica: Replicas = %d must be >= 0", opts.Replicas)
	}
	if cells < 0 {
		return nil, fmt.Errorf("replica: cells = %d must be >= 0", cells)
	}
	if cells == 0 {
		return nil, ctx.Err()
	}
	start := opts.replicas()
	if start < 2 {
		start = 2
	}
	maxR := stop.MaxReplicas
	if maxR < start {
		maxR = start
	}
	sims := make([]Sim, cells)
	for i := range sims {
		sims[i] = sim(i)
		if sims[i] == nil {
			return nil, fmt.Errorf("replica: sim(%d) returned nil", i)
		}
	}

	type pair struct{ cell, rep int }
	have := make([][]Sample, cells)
	want := make([]int, cells)
	for i := range want {
		want[i] = start
	}
	for {
		// The work list enumerates missing (cell, replica) pairs in
		// (cell, replica) order, so appending round results keeps every
		// cell's samples in replica order — the order reduce requires.
		var work []pair
		maxWant := 0
		for i := 0; i < cells; i++ {
			for j := len(have[i]); j < want[i]; j++ {
				work = append(work, pair{cell: i, rep: j})
			}
			if want[i] > maxWant {
				maxWant = want[i]
			}
		}
		if len(work) > 0 {
			seeds := Seeds(opts.Seed, cells, maxWant)
			grid, err := runner.Indexed("job", len(work))
			if err != nil {
				return nil, err
			}
			samples, err := runner.Run(ctx, grid,
				func(ctx context.Context, pt runner.Point, _ *rng.Source) (Sample, error) {
					p := work[pt.Index]
					return simulateOne(ctx, sims[p.cell],
						Rep{Cell: p.cell, Replica: p.rep, Seed: seeds[p.cell][p.rep]}, opts)
				}, runner.Options{Workers: opts.Workers, Seed: opts.Seed, Hooks: opts.Hooks, Obs: opts.Obs})
			if err != nil {
				return nil, err
			}
			for k, s := range samples {
				have[work[k].cell] = append(have[work[k].cell], s)
			}
		}
		grew := false
		for i := range have {
			if want[i] >= maxR {
				continue
			}
			agg := reduce(have[i])
			if agg.CI95(stop.Metric) > stop.Target {
				want[i] *= 2
				if want[i] > maxR {
					want[i] = maxR
				}
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	out := make([]Agg, cells)
	for i := range out {
		out[i] = reduce(have[i])
	}
	return out, nil
}
