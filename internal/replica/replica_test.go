package replica

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"mfdl/internal/stats"
)

// TestSeedsScheme pins the seed-derivation contract DESIGN.md documents:
// replica 0 of every cell is the base seed, the columns are stable as R
// grows, and cells draw from independent split streams.
func TestSeedsScheme(t *testing.T) {
	const base = uint64(42)
	s8 := Seeds(base, 5, 8)
	for i, row := range s8 {
		if row[0] != base {
			t.Errorf("cell %d replica 0: seed %d, want base %d", i, row[0], base)
		}
	}
	// Growing R extends, never reshuffles: the R=4 table is the R=8
	// table's first four columns.
	s4 := Seeds(base, 5, 4)
	for i := range s4 {
		if !reflect.DeepEqual(s4[i], s8[i][:4]) {
			t.Errorf("cell %d: R=4 seeds %v != R=8 prefix %v", i, s4[i], s8[i][:4])
		}
	}
	// Same for growing the cell count.
	s3cells := Seeds(base, 3, 8)
	if !reflect.DeepEqual(s3cells, s8[:3]) {
		t.Errorf("cells=3 table is not a prefix of cells=5 table")
	}
	// Replica seeds j >= 1 must be distinct across the table (the split
	// streams are independent); collisions would correlate replicas.
	seen := map[uint64]string{}
	for i, row := range s8 {
		for j, seed := range row[1:] {
			at := fmt.Sprintf("[%d][%d]", i, j+1)
			if prev, ok := seen[seed]; ok {
				t.Errorf("seed %d appears at both %s and %s", seed, prev, at)
			}
			seen[seed] = at
		}
	}
	// A different base seed yields a different table.
	other := Seeds(base+1, 5, 8)
	if reflect.DeepEqual(other, s8) {
		t.Errorf("base %d and %d derived identical seed tables", base, base+1)
	}
}

func TestSeedsPanics(t *testing.T) {
	for _, tc := range []struct{ cells, r int }{{-1, 1}, {1, 0}, {1, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Seeds(base, %d, %d) did not panic", tc.cells, tc.r)
				}
			}()
			Seeds(1, tc.cells, tc.r)
		}()
	}
}

// echoSim emits deterministic metrics derived from the replica identity,
// so aggregation results can be predicted exactly.
func echoSim(cell int) Sim {
	return SimFunc(func(_ context.Context, r Rep) (Sample, error) {
		v := float64(r.Cell*1000 + r.Replica)
		var sum stats.Summary
		sum.Add(v)
		sum.Add(v + 1)
		return Sample{
			Values:    map[string]float64{"v": v, "seedlo": float64(r.Seed % 997)},
			Counts:    map[string]float64{"n": 1, "cell": float64(r.Cell)},
			Summaries: map[string]stats.Summary{"s": sum},
		}, nil
	})
}

func TestRunAggregation(t *testing.T) {
	const cells, r = 3, 4
	aggs, err := Run(context.Background(), cells, echoSim, Options{Replicas: r, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != cells {
		t.Fatalf("got %d aggs, want %d", len(aggs), cells)
	}
	for c, agg := range aggs {
		if agg.Replicas != r {
			t.Errorf("cell %d: Replicas = %d, want %d", c, agg.Replicas, r)
		}
		// Values: the across-replica distribution of v = 1000c + j over
		// j = 0..3 has mean 1000c + 1.5, min 1000c, max 1000c + 3.
		v := agg.Value("v")
		if v.N() != r {
			t.Errorf("cell %d: v.N = %d, want %d", c, v.N(), r)
		}
		wantMean := float64(1000*c) + 1.5
		if math.Abs(agg.Mean("v")-wantMean) > 1e-12 {
			t.Errorf("cell %d: mean %v, want %v", c, agg.Mean("v"), wantMean)
		}
		if v.Min() != float64(1000*c) || v.Max() != float64(1000*c+3) {
			t.Errorf("cell %d: min/max %v/%v, want %d/%d", c, v.Min(), v.Max(), 1000*c, 1000*c+3)
		}
		// CI95 of {0,1,2,3}: sd = sqrt(5/3), stderr = sd/2.
		wantCI := 1.959963984540054 * math.Sqrt(5.0/3.0) / 2
		if math.Abs(agg.CI95("v")-wantCI) > 1e-12 {
			t.Errorf("cell %d: CI95 %v, want %v", c, agg.CI95("v"), wantCI)
		}
		// Counts sum across replicas.
		if got := agg.Count("n"); got != r {
			t.Errorf("cell %d: count n = %v, want %d", c, got, r)
		}
		if got := agg.Count("cell"); got != float64(c*r) {
			t.Errorf("cell %d: count cell = %v, want %d", c, got, c*r)
		}
		// Summaries pool: 2 observations per replica.
		pooled := agg.Summary("s")
		if got := pooled.N(); got != 2*r {
			t.Errorf("cell %d: summary N = %d, want %d", c, got, 2*r)
		}
		// Missing keys read as zero values.
		if agg.Mean("absent") != 0 || agg.CI95("absent") != 0 || agg.Count("absent") != 0 {
			t.Errorf("cell %d: absent keys should aggregate to zero", c)
		}
	}
}

// TestRunWorkerCountInvariance is the engine's core guarantee: for fixed
// (seed, R), the reduction is bit-identical at any worker count.
func TestRunWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []Agg {
		t.Helper()
		aggs, err := Run(context.Background(), 4, echoSim,
			Options{Replicas: 5, Workers: workers, Seed: 1234})
		if err != nil {
			t.Fatal(err)
		}
		return aggs
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d produced a different aggregation than workers=1", workers)
		}
	}
}

// TestRunReplicaZeroSeed checks the byte-compat linchpin: with R = 1 the
// only replica runs at the base seed itself.
func TestRunReplicaZeroSeed(t *testing.T) {
	const base = uint64(77)
	var got []uint64
	_, err := Run(context.Background(), 3, func(int) Sim {
		return SimFunc(func(_ context.Context, r Rep) (Sample, error) {
			if r.Replica == 0 {
				got = append(got, r.Seed)
			}
			return Sample{}, nil
		})
	}, Options{Replicas: 1, Workers: 1, Seed: base})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range got {
		if s != base {
			t.Errorf("cell %d replica 0 ran at seed %d, want base %d", i, s, base)
		}
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, 1, echoSim, Options{Replicas: -1}); err == nil {
		t.Error("negative Replicas accepted")
	}
	if _, err := Run(ctx, -1, echoSim, Options{}); err == nil {
		t.Error("negative cells accepted")
	}
	if _, err := Run(ctx, 1, func(int) Sim { return nil }, Options{}); err == nil {
		t.Error("nil sim accepted")
	}
	if aggs, err := Run(ctx, 0, echoSim, Options{}); err != nil || aggs != nil {
		t.Errorf("0 cells: got (%v, %v), want (nil, nil)", aggs, err)
	}
	// A replica error is labeled with its (cell, replica, seed) and
	// propagated; the lowest flattened index wins.
	boom := errors.New("boom")
	_, err := Run(ctx, 2, func(cell int) Sim {
		return SimFunc(func(_ context.Context, r Rep) (Sample, error) {
			if r.Cell == 1 && r.Replica == 2 {
				return Sample{}, boom
			}
			return Sample{}, nil
		})
	}, Options{Replicas: 3, Workers: 1, Seed: 5})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), "cell 1 replica 2") {
		t.Errorf("error %q does not identify the failing replica", err)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, 2, echoSim, Options{Replicas: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestKeys(t *testing.T) {
	if got, want := ClassKey(3, OnlinePerFile), "class/3/online_per_file"; got != want {
		t.Errorf("ClassKey = %q, want %q", got, want)
	}
	if got, want := BandwidthKey("dsl", Completed), "bw/dsl/completed"; got != want {
		t.Errorf("BandwidthKey = %q, want %q", got, want)
	}
}
