package replica

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"mfdl/internal/rng"
	"mfdl/internal/stats"
)

// SampleSchemaVersion is embedded in every encoded Sample and checked on
// decode, so processes built from different revisions of the sample model
// refuse to exchange replica results instead of silently misreading them.
const SampleSchemaVersion = 1

// hexbits carries a float64 across JSON as its IEEE-754 bit pattern in
// hex, the same discipline the solve cache uses: encoding/json rejects NaN
// and ±Inf, but simulator metrics legitimately carry NaN (e.g. per-class
// times of classes nobody joined), and bit patterns round-trip every value
// bit-exactly by construction.
type hexbits float64

func (b hexbits) MarshalJSON() ([]byte, error) {
	return json.Marshal(strconv.FormatUint(math.Float64bits(float64(b)), 16))
}

func (b *hexbits) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	u, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return err
	}
	*b = hexbits(math.Float64frombits(u))
	return nil
}

// wireSummary is a stats.Summary's full accumulator state on the wire.
type wireSummary struct {
	N    int     `json:"n"`
	Mean hexbits `json:"mean"`
	M2   hexbits `json:"m2"`
	Min  hexbits `json:"min"`
	Max  hexbits `json:"max"`
}

// wireSample is the serialized form of one Sample. encoding/json writes
// map keys sorted, so the encoding is canonical: equal samples encode to
// equal bytes.
type wireSample struct {
	Schema    int                    `json:"schema"`
	Values    map[string]hexbits     `json:"values,omitempty"`
	Counts    map[string]hexbits     `json:"counts,omitempty"`
	Summaries map[string]wireSummary `json:"summaries,omitempty"`
}

// EncodeSample renders a Sample as its canonical, schema-versioned JSON
// payload — the bytes the sample store persists and the fabric wire
// carries for sim-replica cells. Decoding the result with DecodeSample
// reproduces the sample bit-exactly, including NaN metrics and the full
// Welford state of every within-run summary.
func EncodeSample(s Sample) ([]byte, error) {
	w := wireSample{Schema: SampleSchemaVersion}
	if len(s.Values) > 0 {
		w.Values = make(map[string]hexbits, len(s.Values))
		for k, v := range s.Values {
			w.Values[k] = hexbits(v)
		}
	}
	if len(s.Counts) > 0 {
		w.Counts = make(map[string]hexbits, len(s.Counts))
		for k, v := range s.Counts {
			w.Counts[k] = hexbits(v)
		}
	}
	if len(s.Summaries) > 0 {
		w.Summaries = make(map[string]wireSummary, len(s.Summaries))
		for k, sum := range s.Summaries {
			n, mean, m2, min, max := sum.State()
			w.Summaries[k] = wireSummary{
				N: n, Mean: hexbits(mean), M2: hexbits(m2),
				Min: hexbits(min), Max: hexbits(max),
			}
		}
	}
	data, err := json.Marshal(w)
	if err != nil {
		return nil, fmt.Errorf("replica: sample: %w", err)
	}
	return data, nil
}

// DecodeSample parses an encoded sample, rejecting undecodable payloads
// and any schema version other than SampleSchemaVersion.
func DecodeSample(data []byte) (Sample, error) {
	var w wireSample
	if err := json.Unmarshal(data, &w); err != nil {
		return Sample{}, fmt.Errorf("replica: sample: %w", err)
	}
	if w.Schema != SampleSchemaVersion {
		return Sample{}, fmt.Errorf("replica: sample schema %d, this build speaks %d",
			w.Schema, SampleSchemaVersion)
	}
	var s Sample
	if len(w.Values) > 0 {
		s.Values = make(map[string]float64, len(w.Values))
		for k, v := range w.Values {
			s.Values[k] = float64(v)
		}
	}
	if len(w.Counts) > 0 {
		s.Counts = make(map[string]float64, len(w.Counts))
		for k, v := range w.Counts {
			s.Counts[k] = float64(v)
		}
	}
	if len(w.Summaries) > 0 {
		s.Summaries = make(map[string]stats.Summary, len(w.Summaries))
		for k, sum := range w.Summaries {
			s.Summaries[k] = stats.SummaryFromState(
				sum.N, float64(sum.Mean), float64(sum.M2), float64(sum.Min), float64(sum.Max))
		}
	}
	return s, nil
}

// SeedOf returns the seed of replica rep of cell under base — element
// [cell][rep] of Seeds(base, cell+1, rep+1), computed standalone. A remote
// worker can therefore rebuild any single replica's seed without
// enumerating the others, which is what lets the fabric hand out
// (cell, replica) pairs individually.
func SeedOf(base uint64, cell, rep int) uint64 {
	if cell < 0 || rep < 0 {
		panic(fmt.Sprintf("replica: SeedOf(cell=%d, rep=%d)", cell, rep))
	}
	if rep == 0 {
		return base
	}
	parent := rng.New(base)
	var src *rng.Source
	for i := 0; i <= cell; i++ {
		src = parent.Split()
	}
	var seed uint64
	for j := 1; j <= rep; j++ {
		seed = src.Uint64()
	}
	return seed
}

// Reduce folds one cell's samples, in replica order, into an Agg — the
// exact reduction Run applies, exported so that executors which gather
// samples through other routes (the sample store, the distributed fabric)
// produce numerically identical aggregates.
func Reduce(samples []Sample) Agg {
	return reduce(samples)
}
