package replica

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"mfdl/internal/stats"
)

// TestSampleRoundTripExactBits is the wire format's core guarantee: every
// float — including NaN and ±Inf, which plain JSON rejects — survives
// encode/decode bit-exactly, and summaries carry their full Welford state.
func TestSampleRoundTripExactBits(t *testing.T) {
	var sum stats.Summary
	sum.Add(0.1)
	sum.Add(0.2)
	sum.Add(-3.5)
	want := Sample{
		Values: map[string]float64{
			"nan":  math.NaN(),
			"pinf": math.Inf(1),
			"ninf": math.Inf(-1),
			"pi":   math.Pi,
			"zero": 0,
			"neg0": math.Copysign(0, -1),
		},
		Counts:    map[string]float64{"n": 41, "tiny": 1e-300},
		Summaries: map[string]stats.Summary{"s": sum},
	}
	data, err := EncodeSample(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSample(data)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want.Values {
		g, ok := got.Values[k]
		if !ok || math.Float64bits(g) != math.Float64bits(w) {
			t.Errorf("Values[%q] = %x, want %x", k, math.Float64bits(g), math.Float64bits(w))
		}
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Errorf("Counts = %v, want %v", got.Counts, want.Counts)
	}
	gotSum := got.Summaries["s"]
	gn, gm, g2, gmin, gmax := gotSum.State()
	wn, wm, w2, wmin, wmax := sum.State()
	if gn != wn || math.Float64bits(gm) != math.Float64bits(wm) ||
		math.Float64bits(g2) != math.Float64bits(w2) ||
		math.Float64bits(gmin) != math.Float64bits(wmin) ||
		math.Float64bits(gmax) != math.Float64bits(wmax) {
		t.Errorf("summary state (%d %v %v %v %v), want (%d %v %v %v %v)",
			gn, gm, g2, gmin, gmax, wn, wm, w2, wmin, wmax)
	}
}

// Equal samples encode to equal bytes — the property the sample store and
// the fabric checkpoint layer rely on for identity.
func TestSampleEncodingIsCanonical(t *testing.T) {
	mk := func() Sample {
		return Sample{
			Values: map[string]float64{"b": 2, "a": 1, "c": 3},
			Counts: map[string]float64{"z": 9, "y": 8},
		}
	}
	a, err := EncodeSample(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSample(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("encodings differ:\n%s\n%s", a, b)
	}
}

// Empty maps are omitted on the wire and come back nil, so an
// encode/decode cycle never turns an absent map into an empty one.
func TestSampleEmptyMapsStayNil(t *testing.T) {
	data, err := EncodeSample(Sample{Values: map[string]float64{}, Counts: nil})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "values") || strings.Contains(string(data), "counts") {
		t.Fatalf("empty maps serialized: %s", data)
	}
	got, err := DecodeSample(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Values != nil || got.Counts != nil || got.Summaries != nil {
		t.Fatalf("decoded empty sample has non-nil maps: %+v", got)
	}
}

func TestSampleDecodeRejections(t *testing.T) {
	for name, data := range map[string][]byte{
		"garbage":       []byte("not json {{{"),
		"wrong-schema":  []byte(`{"schema":999}`),
		"zero-schema":   []byte(`{}`),
		"bad-bits":      []byte(`{"schema":1,"values":{"x":"zzzz"}}`),
		"numeric-float": []byte(`{"schema":1,"values":{"x":1.5}}`),
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeSample(data); err == nil {
				t.Fatalf("DecodeSample(%s) accepted", data)
			}
		})
	}
}

// SeedOf must agree with Seeds at every (cell, replica) index — it is the
// same derivation computed standalone, and the fabric depends on that to
// hand out single replicas.
func TestSeedOfMatchesSeeds(t *testing.T) {
	const cells, r = 5, 7
	for _, base := range []uint64{0, 1, 42, ^uint64(0)} {
		grid := Seeds(base, cells, r)
		for i := 0; i < cells; i++ {
			for j := 0; j < r; j++ {
				if got := SeedOf(base, i, j); got != grid[i][j] {
					t.Errorf("SeedOf(%d, %d, %d) = %#x, want %#x", base, i, j, got, grid[i][j])
				}
			}
		}
	}
}

func TestSeedOfPanicsOnNegativeIndex(t *testing.T) {
	for _, tc := range []struct{ cell, rep int }{{-1, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SeedOf(1, %d, %d) did not panic", tc.cell, tc.rep)
				}
			}()
			SeedOf(1, tc.cell, tc.rep)
		}()
	}
}

// Reduce over a cell's raw samples must equal the Agg Run computes for the
// same cell — the equivalence that lets the fabric reduce shipped samples.
func TestReduceMatchesRun(t *testing.T) {
	const cells, r = 3, 4
	aggs, err := Run(context.Background(), cells, echoSim, Options{Replicas: r, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	seeds := Seeds(11, cells, r)
	for c := 0; c < cells; c++ {
		samples := make([]Sample, r)
		for j := 0; j < r; j++ {
			s, err := echoSim(c).Simulate(context.Background(),
				Rep{Cell: c, Replica: j, Seed: seeds[c][j]})
			if err != nil {
				t.Fatal(err)
			}
			samples[j] = s
		}
		if got := Reduce(samples); !reflect.DeepEqual(got, aggs[c]) {
			t.Errorf("cell %d: Reduce != Run agg", c)
		}
	}
}
