package replica

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mfdl/internal/runner/diskcache"
)

// countingSim wraps a per-cell metric function and records every replica
// it actually simulates, so tests can assert exactly which (cell, replica)
// pairs were computed versus replayed.
type countingSim struct {
	mu    sync.Mutex
	runs  map[[2]int]int // (cell, replica) -> simulate invocations
	value func(cell, rep int) float64
}

func newCountingSim(value func(cell, rep int) float64) *countingSim {
	return &countingSim{runs: make(map[[2]int]int), value: value}
}

func (c *countingSim) sim(cell int) Sim {
	return SimFunc(func(_ context.Context, r Rep) (Sample, error) {
		c.mu.Lock()
		c.runs[[2]int{r.Cell, r.Replica}]++
		c.mu.Unlock()
		return Sample{Values: map[string]float64{"m": c.value(r.Cell, r.Replica)}}, nil
	})
}

func (c *countingSim) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.runs {
		n += v
	}
	return n
}

// maxRuns returns the largest invocation count over all pairs — 1 means no
// pair was ever simulated twice.
func (c *countingSim) maxRuns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := 0
	for _, v := range c.runs {
		if v > m {
			m = v
		}
	}
	return m
}

// A disabled rule makes RunSequential literally Run.
func TestSequentialDisabledEqualsRun(t *testing.T) {
	for _, stop := range []Stopping{
		{},
		{Metric: "v"},             // no target
		{Target: 0.5},             // no metric
		{Metric: "v", Target: -1}, // non-positive target
	} {
		opts := Options{Replicas: 3, Seed: 5}
		want, err := Run(context.Background(), 4, echoSim, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunSequential(context.Background(), 4, echoSim, opts, stop)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stop=%+v: RunSequential != Run", stop)
		}
	}
}

// Cells converge independently: a zero-variance cell stops at the starting
// replica count while a noisy cell doubles up to MaxReplicas, and no
// (cell, replica) pair is ever simulated twice across rounds.
func TestSequentialGrowsOnlyNoisyCells(t *testing.T) {
	cs := newCountingSim(func(cell, rep int) float64 {
		if cell == 0 {
			return 7 // constant: CI95 = 0 after the first round
		}
		return float64(100 * rep) // noisy: CI95 stays far above target
	})
	aggs, err := RunSequential(context.Background(), 2, cs.sim,
		Options{Replicas: 2, Seed: 3},
		Stopping{Metric: "m", Target: 0.01, MaxReplicas: 8})
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Replicas != 2 {
		t.Errorf("converged cell grew to R=%d, want 2", aggs[0].Replicas)
	}
	if aggs[1].Replicas != 8 {
		t.Errorf("noisy cell stopped at R=%d, want MaxReplicas=8", aggs[1].Replicas)
	}
	if cs.maxRuns() > 1 {
		t.Error("a replica was simulated more than once across rounds")
	}
	if got := cs.total(); got != 2+8 {
		t.Errorf("simulated %d replicas, want 10", got)
	}
	// A cell that never emits the metric counts as converged (CI95 of an
	// absent key is 0).
	if aggs[0].CI95("absent") != 0 {
		t.Error("absent metric should read as converged")
	}
}

// The start is raised to 2 (a CI needs at least two observations), and
// MaxReplicas below the start is raised to the start.
func TestSequentialStartFloor(t *testing.T) {
	cs := newCountingSim(func(cell, rep int) float64 { return float64(rep) })
	aggs, err := RunSequential(context.Background(), 1, cs.sim,
		Options{Replicas: 1, Seed: 3},
		Stopping{Metric: "m", Target: 0.01, MaxReplicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Replicas != 2 || cs.total() != 2 {
		t.Fatalf("R = %d (%d sims), want 2 (2 sims)", aggs[0].Replicas, cs.total())
	}
}

// The sample-store contract: R grows, it never resamples. A second run
// over the same store — even one starting at a higher replica count —
// simulates only the replicas the store has not seen.
func TestSequentialReusesStoredSamples(t *testing.T) {
	store, err := diskcache.OpenSamples(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	value := func(cell, rep int) float64 {
		if cell == 0 {
			return 7
		}
		return float64(100 * rep)
	}
	key := func(cell int) string { return fmt.Sprintf("cell-%d", cell) }
	stop := Stopping{Metric: "m", Target: 0.01, MaxReplicas: 8}

	first := newCountingSim(value)
	want, err := RunSequential(context.Background(), 2, first.sim,
		Options{Replicas: 2, Seed: 3, Samples: store, SampleKey: key}, stop)
	if err != nil {
		t.Fatal(err)
	}
	if first.total() != 10 || first.maxRuns() > 1 {
		t.Fatalf("first run simulated %d replicas (max %d per pair), want 10 distinct",
			first.total(), first.maxRuns())
	}

	// Identical re-run: every sample replays, nothing simulates, and the
	// aggregates are bit-identical to the first run's.
	second := newCountingSim(value)
	got, err := RunSequential(context.Background(), 2, second.sim,
		Options{Replicas: 2, Seed: 3, Samples: store, SampleKey: key}, stop)
	if err != nil {
		t.Fatal(err)
	}
	if second.total() != 0 {
		t.Errorf("re-run simulated %d replicas, want 0", second.total())
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("replayed aggregates differ from computed ones")
	}

	// Growing the start to 4 only costs the converged cell its two missing
	// replicas; the noisy cell's 8 stored samples all replay.
	third := newCountingSim(value)
	if _, err := RunSequential(context.Background(), 2, third.sim,
		Options{Replicas: 4, Seed: 3, Samples: store, SampleKey: key}, stop); err != nil {
		t.Fatal(err)
	}
	if third.total() != 2 {
		t.Errorf("grown run simulated %d replicas, want 2 (cell 0, replicas 2..3)", third.total())
	}
	for pair, n := range third.runs {
		if pair[0] != 0 || pair[1] < 2 || n != 1 {
			t.Errorf("grown run simulated unexpected pair %v ×%d", pair, n)
		}
	}
}

func TestSequentialErrors(t *testing.T) {
	stop := Stopping{Metric: "m", Target: 0.1, MaxReplicas: 4}
	if _, err := RunSequential(context.Background(), 1, echoSim,
		Options{Replicas: -1}, stop); err == nil {
		t.Error("negative Replicas accepted")
	}
	if _, err := RunSequential(context.Background(), -1, echoSim,
		Options{}, stop); err == nil {
		t.Error("negative cells accepted")
	}
	if _, err := RunSequential(context.Background(), 1,
		func(int) Sim { return nil }, Options{}, stop); err == nil {
		t.Error("nil sim accepted")
	}
	if aggs, err := RunSequential(context.Background(), 0, echoSim,
		Options{}, stop); err != nil || len(aggs) != 0 {
		t.Errorf("zero cells: %v, %v", aggs, err)
	}
}
