// Quickstart: evaluate all four downloading schemes of the paper on one
// server–torrent system and print the paper's headline metric for each.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mfdl/internal/core"
	"mfdl/internal/fluid"
)

func main() {
	// A system with 10 interest-correlated files (e.g. a TV season),
	// the paper's peer parameters, and a high file correlation: most
	// visitors want most of the files.
	sys, err := core.NewSystem(core.Config{
		Params:  fluid.PaperParams, // μ=0.02, η=0.5, γ=0.05
		K:       10,
		Lambda0: 1,
		P:       0.9,
	})
	if err != nil {
		log.Fatal(err)
	}

	comparisons, err := sys.Compare(core.Schemes, core.WithRho(0.1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("average online time per file (lower is better), p = 0.9:")
	for _, c := range comparisons {
		fmt.Printf("  %-6s %7.2f\n", c.Scheme, c.Result.AvgOnlinePerFile())
	}

	best, err := core.Best(comparisons)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest scheme: %s — the paper's proposal wins when files are "+
		"highly correlated.\n", best.Scheme)

	// Per-class detail for the winner: who gains, who pays.
	fmt.Println("\nper-class online time per file under", best.Scheme, "(ρ=0.1):")
	for _, cl := range best.Result.Classes {
		if cl.EntryRate == 0 {
			continue
		}
		fmt.Printf("  class %2d (requests %2d files): %6.2f\n",
			cl.Class, cl.Class, cl.OnlinePerFile())
	}
}
