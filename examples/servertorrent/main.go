// Server–torrent walkthrough: the full deployment loop of the paper's
// Section 3.1 (Figure 1), in one process with a real HTTP boundary.
//
//  1. A publisher builds a multi-file .torrent (10 synthetic episodes) and
//     uploads it to the indexing web server / tracker.
//  2. A user browses the index, downloads the metadata, verifies its
//     info-hash, and announces into the swarm.
//  3. More peers join and complete; the index reflects the swarm state.
//  4. The user consults the fluid models to pick a downloading scheme for
//     exactly this torrent.
//
// Run with:
//
//	go run ./examples/servertorrent
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"mfdl/internal/core"
	"mfdl/internal/fluid"
	"mfdl/internal/metainfo"
	"mfdl/internal/rng"
	"mfdl/internal/tracker"
)

func main() {
	// --- publisher side -------------------------------------------------
	const episodes = 10
	src := rng.New(42)
	content := make([]byte, episodes*4096)
	for i := range content {
		content[i] = byte(src.Uint32())
	}
	files := make([]metainfo.FileEntry, episodes)
	for i := range files {
		files[i] = metainfo.FileEntry{Path: fmt.Sprintf("season/e%02d.mkv", i+1), Length: 4096}
	}
	meta, err := metainfo.Build("season", "/announce", 1024, files, metainfo.BytesSource(content))
	if err != nil {
		log.Fatal(err)
	}

	reg := tracker.NewRegistry(1)
	infoHash, err := reg.Publish(meta)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(tracker.Handler(reg))
	defer srv.Close()
	fmt.Printf("publisher: %d-episode season published, info-hash %s\n",
		episodes, tracker.HexHash(infoHash))

	// --- a user arrives --------------------------------------------------
	fmt.Println("\nuser: browsing the index …")
	fmt.Println(get(srv.URL + "/index"))

	torrentBytes := get(srv.URL + "/torrent/" + tracker.HexHash(infoHash))
	parsed, err := metainfo.Unmarshal([]byte(torrentBytes))
	if err != nil {
		log.Fatal(err)
	}
	parsedHash, err := parsed.Info.InfoHash()
	if err != nil {
		log.Fatal(err)
	}
	if parsedHash != infoHash {
		log.Fatal("metadata integrity check failed")
	}
	fmt.Printf("user: metadata verified — %d files, %d pieces of %d bytes\n",
		len(parsed.Info.Files), parsed.Info.NumPieces(), parsed.Info.PieceLength)
	sub := parsed.Info.FilePieces()
	fmt.Printf("user: subtorrent of e01 spans pieces %d–%d; e10 spans %d–%d\n",
		sub[0].First, sub[0].Last, sub[9].First, sub[9].Last)

	// --- the swarm fills -------------------------------------------------
	for i := 0; i < 8; i++ {
		left := "1"
		event := "started"
		if i < 3 { // three peers already finished and seed
			left = "0"
			event = "completed"
		}
		announce(srv.URL, infoHash, fmt.Sprintf("peer%02d", i), left, event)
	}
	fmt.Println("\nafter 8 peers joined (3 seeding):")
	fmt.Println(get(srv.URL + "/index"))

	// --- choosing a scheme -----------------------------------------------
	sys, err := core.NewSystem(core.Config{
		Params: fluid.PaperParams, K: episodes, Lambda0: 1, P: 0.95,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user: fluid-model forecast for this torrent (p = 0.95):")
	for _, sc := range []core.Scheme{core.MFCD, core.CMFSD} {
		res, err := sys.Evaluate(sc, core.WithRho(0.1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %6.1f time units online per episode\n", sc, res.AvgOnlinePerFile())
	}
	fmt.Println("→ download the episodes sequentially and seed finished ones (CMFSD).")
}

func get(rawURL string) string {
	resp, err := http.Get(rawURL)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(body)
}

func announce(base string, h tracker.InfoHash, id, left, event string) {
	q := url.Values{}
	q.Set("info_hash", string(h[:]))
	q.Set("peer_id", id)
	q.Set("port", "6881")
	q.Set("left", left)
	q.Set("event", event)
	_ = get(base + "/announce?" + q.Encode())
}
