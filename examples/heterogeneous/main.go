// Heterogeneous-swarm scenario: the paper's Section 2 sets up its fluid
// model for peers categorized into bandwidth classes {C_i(μ_i, c_i)} with
// two sharing assumptions, then specializes to homogeneous peers for the
// evaluation. This example exercises the general model: a torrent shared by
// broadband, cable and DSL users, answering the questions the homogeneous
// model cannot — who waits, and what happens when the fast peers leave
// quickly after finishing.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"mfdl/internal/fluid"
)

func main() {
	// Upload bandwidths in files per time unit; download capacities in
	// the same currency (they only set the seed-service split).
	mix := []fluid.Class{
		{Name: "broadband", Mu: 0.06, C: 6, Lambda: 0.3, Gamma: 0.05},
		{Name: "cable", Mu: 0.02, C: 2, Lambda: 0.5, Gamma: 0.05},
		{Name: "dsl", Mu: 0.008, C: 1, Lambda: 0.2, Gamma: 0.05},
	}
	show("mixed swarm, patient seeds (1/γ = 20)", mix)

	// Impatient broadband seeds: the fast uploaders leave 4× sooner
	// after finishing. Everyone slows down — the DSL users most.
	impatient := append([]fluid.Class(nil), mix...)
	impatient[0].Gamma = 0.2
	show("broadband seeds leave 4x sooner", impatient)

	fmt.Println("reading: download times track each class's own upload (tit-for-tat,")
	fmt.Println("assumption 1) plus its share of seed service (∝ download capacity,")
	fmt.Println("assumption 2); when the fast class stops seeding, the whole swarm —")
	fmt.Println("and especially the slowest class — pays.")
}

func show(title string, classes []fluid.Class) {
	m, err := fluid.NewMultiClass(0.5, classes)
	if err != nil {
		log.Fatal(err)
	}
	ss, err := fluid.SteadyState(m, fluid.SteadyStateOptions{MaxTime: 2e6})
	if err != nil {
		log.Fatal(err)
	}
	dl, online, err := m.ClassTimes(ss)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fluid.Stability(m, ss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (stable: %v):\n", title, rep.Stable)
	fmt.Printf("  %-10s %10s %10s %12s\n", "class", "download", "online", "downloaders")
	for i, c := range classes {
		fmt.Printf("  %-10s %10.1f %10.1f %12.1f\n", c.Name, dl[i], online[i], ss[i])
	}
	fmt.Println()
}
