// Adaptive-ρ scenario: the paper's Adapt mechanism under cheating peers
// (Section 4.3, left unevaluated as future work). Obedient peers start at
// ρ = 0 (full collaboration) and tune ρ from the difference between what
// their virtual seeds give and what they receive from others'. As the
// cheater fraction grows, obedient peers protect themselves and the system
// slides toward MFCD — exactly the degeneration the paper predicts.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"mfdl/internal/adapt"
	"mfdl/internal/eventsim"
	"mfdl/internal/fluid"
	"mfdl/internal/scheme"
)

func main() {
	// Time-rescaled paper parameters (μ, γ ×10) keep the simulated swarm
	// small and fast; all times scale by 1/10.
	params := fluid.Params{Mu: 0.2, Eta: 0.5, Gamma: 0.5}
	controller := adapt.Config{
		Lower:       -0.25 * params.Mu, // tolerate a ±25%·μ imbalance
		Upper:       0.25 * params.Mu,
		StepUp:      0.2,
		StepDown:    0.1,
		Period:      5,
		InitialRho:  0,
		Consecutive: 2,
	}

	fmt.Println("Adapt under cheating (K=10, p=0.9, flow-level simulation):")
	fmt.Printf("%-18s %-16s %-18s\n", "cheater fraction", "mean final ρ", "online time/file")
	for _, cheaters := range []float64{0, 0.25, 0.5, 0.75, 1} {
		cfg := eventsim.Config{
			Params:          params,
			K:               10,
			Lambda0:         1,
			P:               0.9,
			Scheme:          scheme.SimCMFSD,
			Adapt:           &controller,
			CheaterFraction: cheaters,
			Horizon:         4000,
			Warmup:          800,
			Seed:            7,
		}
		res, err := eventsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rho := res.FinalRho.Mean()
		if res.FinalRho.N() == 0 {
			rho = 1 // every multi-file peer cheated; ρ is pinned at 1
		}
		fmt.Printf("%-18.2f %-16.3f %-18.3f\n", cheaters, rho, res.AvgOnlinePerFile)
	}
	fmt.Println("\nreading: with few cheaters Adapt keeps ρ low and the swarm fast;")
	fmt.Println("as cheating spreads, obedient peers raise ρ in self-defence and the")
	fmt.Println("system converges to MFCD performance — cheating buys nothing lasting.")
}
