// Mini-swarm: real bytes over the real protocol. A seed and three peers
// exchange a 6-file torrent through the wire protocol (handshake, bitfield,
// request/piece with SHA-1 verification) — no simulation, actual transfers
// over in-process connections:
//
//   - "alice" downloads sequentially (CMFSD's download side),
//   - "bob" downloads concurrently (MFCD, stock client behaviour),
//   - "carol" is connected ONLY to alice — she can complete because a
//     sequential downloader holds complete files early and serves them,
//     which is exactly the partial-seed behaviour the paper's CMFSD
//     exploits.
//
// Run with:
//
//	go run ./examples/miniswarm
package main

import (
	"fmt"
	"log"
	"time"

	"mfdl/internal/client"
	"mfdl/internal/metainfo"
	"mfdl/internal/rng"
	"mfdl/internal/storage"
)

const (
	episodes = 6
	fileSize = 8 << 10
	pieceLen = 2 << 10
)

func main() {
	// Publisher: synthesize a season and hash it into a torrent.
	src := rng.New(7)
	content := make([]byte, episodes*fileSize)
	for i := range content {
		content[i] = byte(src.Uint32())
	}
	files := make([]metainfo.FileEntry, episodes)
	for i := range files {
		files[i] = metainfo.FileEntry{Path: fmt.Sprintf("season/e%02d.mkv", i+1), Length: fileSize}
	}
	meta, err := metainfo.Build("season", "/announce", pieceLen, files, metainfo.BytesSource(content))
	if err != nil {
		log.Fatal(err)
	}
	hash, _ := meta.Info.InfoHash()
	fmt.Printf("torrent: %d files, %d pieces, info-hash %x…\n\n",
		episodes, meta.Info.NumPieces(), hash[:4])

	seed := peer("seed", meta, content, client.PolicySequential)
	alice := peer("alice", meta, nil, client.PolicySequential)
	bob := peer("bob", meta, nil, client.PolicyConcurrent)
	carol := peer("carol", meta, nil, client.PolicySequential)
	defer func() {
		for _, c := range []*client.Client{seed, alice, bob, carol} {
			c.Close()
		}
	}()

	must(client.Connect(alice, seed))
	must(client.Connect(bob, seed))
	must(client.Connect(carol, alice)) // carol never talks to the seed

	start := time.Now()
	for _, who := range []struct {
		name string
		c    *client.Client
	}{{"alice", alice}, {"bob", bob}, {"carol", carol}} {
		select {
		case <-who.c.Done():
			fmt.Printf("%-6s complete and verified after %v\n", who.name, time.Since(start).Round(time.Millisecond))
		case <-time.After(30 * time.Second):
			log.Fatalf("%s stalled: %v", who.name, who.c.Errors())
		}
	}

	fmt.Println("\ncarol completed without ever contacting the seed: alice's")
	fmt.Println("sequentially-finished episodes made her a usable partial seed —")
	fmt.Println("the mechanism CMFSD's collaboration is built on.")
}

func peer(name string, meta *metainfo.MetaInfo, full []byte, policy client.Policy) *client.Client {
	var st *storage.Store
	var err error
	if full != nil {
		st, err = storage.NewSeeded(&meta.Info, metainfo.BytesSource(full))
	} else {
		st, err = storage.New(&meta.Info)
	}
	must(err)
	var id [20]byte
	copy(id[:], name)
	c, err := client.New(client.Config{Info: &meta.Info, Store: st, PeerID: id, Policy: policy})
	must(err)
	return c
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
