// Crossover scenario: when should a BitTorrent client download multiple
// torrents concurrently rather than one by one? The paper's Figure 2 shows
// MTCD falls behind MTSD as file correlation grows; this example locates
// the exact break-even correlation p* for each user class with Brent's
// method.
//
// A neat analytical fact falls out of Eq. (2): the break-even condition
// reduces to (1 − W/S)/η = 1 − 1/i with S = Σλ_j^l and W = Σλ_j^l/l, so p*
// is independent of both μ and γ — only the sharing efficiency η moves it.
// The example sweeps η to demonstrate.
//
// Run with:
//
//	go run ./examples/crossover
package main

import (
	"fmt"
	"log"
	"math"

	"mfdl/internal/experiments"
	"mfdl/internal/fluid"
)

func main() {
	fmt.Println("break-even correlation p* per class (MTCD better below, MTSD above):")
	fmt.Println()

	for _, eta := range []float64{0.25, 0.5, 1.0} {
		cfg := experiments.Config{
			Params:  fluid.Params{Mu: 0.02, Eta: eta, Gamma: 0.05},
			K:       10,
			Lambda0: 1,
		}
		res, err := experiments.Crossover(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("η = %.2f (downloaders upload at %.0f%% of seed effectiveness):\n", eta, 100*eta)
		for i, p := range res.PStar {
			class := i + 1
			switch {
			case math.IsNaN(p) && class == 1:
				fmt.Printf("  class %2d: concurrency never helps (single file)\n", class)
			case math.IsNaN(p):
				fmt.Printf("  class %2d: no crossover in (0,1)\n", class)
			default:
				fmt.Printf("  class %2d: p* = %.3f\n", class, p)
			}
		}
		fmt.Println()
	}
	fmt.Println("reading: the more files a user requests — and the better downloaders")
	fmt.Println("share (higher η) — the wider the correlation range where concurrent")
	fmt.Println("downloading still wins; for highly correlated content, sequential")
	fmt.Println("always prevails. μ and γ cancel out of the condition entirely.")
}
