// TV-series scenario: a publisher shares a 12-episode season in one
// multi-file torrent. Nearly every visitor wants the whole season (high
// file correlation), which is exactly the situation the paper's CMFSD
// scheme targets. This example answers the publisher's question: how much
// does collaborative sequential downloading save my users, and how should
// ρ be set?
//
// It runs the analysis twice: with the fluid model (instant, the paper's
// methodology) and with the chunk-level swarm simulator (slower, mechanism
// level), and shows both agree on who wins.
//
// Run with:
//
//	go run ./examples/tvseries
package main

import (
	"fmt"
	"log"

	"mfdl/internal/core"
	"mfdl/internal/fluid"
	"mfdl/internal/scheme"
	"mfdl/internal/swarm"
)

func main() {
	const (
		episodes    = 12
		correlation = 0.95 // almost everyone wants the full season
	)
	sys, err := core.NewSystem(core.Config{
		Params:  fluid.PaperParams,
		K:       episodes,
		Lambda0: 1,
		P:       correlation,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("season of %d episodes, correlation p = %.2f\n\n", episodes, correlation)

	mfcd, err := sys.Evaluate(core.MFCD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fluid model, online time per episode:\n")
	fmt.Printf("  MFCD (today's clients, random chunks): %6.1f\n", mfcd.AvgOnlinePerFile())
	for _, rho := range []float64{0.5, 0.1, 0} {
		res, err := sys.Evaluate(core.CMFSD, core.WithRho(rho))
		if err != nil {
			log.Fatal(err)
		}
		gain := (1 - res.AvgOnlinePerFile()/mfcd.AvgOnlinePerFile()) * 100
		fmt.Printf("  CMFSD ρ=%.1f:                          %6.1f  (%.0f%% faster)\n",
			rho, res.AvgOnlinePerFile(), gain)
	}

	// Mechanism-level confirmation with the chunk simulator: pieces,
	// tit-for-tat choking, rarest-first — smaller swarm, same ordering.
	fmt.Printf("\nchunk-level swarm (16-chunk episodes, TFT + rarest-first):\n")
	base := swarm.DefaultConfig
	base.K = 6 // a smaller season keeps the example fast
	base.P = correlation
	base.Horizon = 2000
	base.Warmup = 400
	for _, setting := range []struct {
		name   string
		scheme scheme.SimScheme
		rho    float64
	}{
		{"MFCD", scheme.SimMFCD, 0},
		{"CMFSD ρ=0.5", scheme.SimCMFSD, 0.5},
		{"CMFSD ρ=0", scheme.SimCMFSD, 0},
	} {
		cfg := base
		cfg.Scheme = setting.scheme
		cfg.Rho = setting.rho
		res, err := swarm.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %6.2f rounds/episode  (%d downloads completed)\n",
			setting.name, res.AvgOnlinePerFile, res.CompletedUsers)
	}
	fmt.Println("\nboth levels agree: publish the season as one torrent and let")
	fmt.Println("peers download sequentially while seeding finished episodes.")
}
