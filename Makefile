# Verification tiers. tier1 is the gate every change must keep green;
# tier2 adds static analysis and the race detector over the concurrent
# paths (runner pool, two-tier solve cache incl. runner/diskcache, the
# replica engine, the parallel experiment fan-outs, simulators, and the
# observability registry hammered from concurrent announces). The
# explicit replica runs exercise the engine at R >= 2 — multiple replicas
# of one cell sharing a Sim value across pool workers — which is exactly
# where an accidental shared-state mutation would race. The resilience
# runs cover the fault-injection layer: deterministic fault plans, panic
# isolation with retries, checkpoint/resume, the chaos-golden check
# (same chaos seed ⇒ identical tables at any worker count), and the
# client's disconnect/watchdog/announce-retry paths. The fabric run
# covers the distributed sweep layer end to end — coordinator HTTP
# protocol, lease expiry and work-stealing, duplicate absorption,
# checkpoint resume, and the distributed-equals-local byte-identity
# guarantee — with the race detector watching the coordinator's shared
# lease/cell state. The sim-kind and sample-store runs cover the
# replica-simulation job layer: the sim-replica kind through the fabric
# (payload byte-identity, sample reuse across coordinators, adaptive
# lease sizing), the keyed sample store's corruption/eviction behavior,
# and the sequential-stopping engine's never-resample contract. The
# telemetry run hammers the fleet-telemetry paths — heartbeat pushes,
# span shipping, and /metrics + /v1/fleet scrapes concurrent with
# lease/complete traffic — under the race detector, and the chaos/
# hardening runs re-check the deterministic fault layer and the
# degradation paths it guards (seeded drop/delay/5xx/corrupt schedules,
# blackout middleware, lease renewal, park-and-rejoin, coordinator
# restart absorption) before the soak — a full distributed sim-replica
# sweep under sustained chaos, a coordinator blackout and a mid-run
# worker kill, asserting byte-identical results at a fixed chaos seed.
# tier2 finishes with the bench-check benchmark regression gate.

.PHONY: tier1 tier2 bench bench-check soak profile

tier1:
	go build ./... && go test ./...

tier2:
	go vet ./... && go test -race -timeout 30m ./...
	go test -race -count=1 -run 'Replica|Merge|WorkerCountInvariance' ./internal/replica/ ./internal/stats/
	go test -race -count=1 -run 'ReplicatedDeterminism|ReplicasExtend' ./internal/experiments/
	go test -race -count=1 ./internal/obs/
	go test -race -count=1 -run 'Metrics|CountersMonotonic|ObservedConcurrent' ./internal/tracker/
	go test -race -count=1 ./internal/faults/
	go test -race -count=1 -run 'Panic|Retr|Checkpoint' ./internal/runner/ ./internal/runner/diskcache/
	go test -race -count=1 -run 'ChurnSweepDeterministic' ./internal/experiments/
	go test -race -count=1 -run 'Disconnect|Watchdog|AnnounceWithRetry|Reconnect' ./internal/client/
	go test -race -count=1 -run 'TestStepAllocs' ./internal/swarm/ ./internal/eventsim/
	go test -race -count=1 ./internal/fabric/
	go test -race -count=1 -run 'SampleStore' ./internal/runner/diskcache/
	go test -race -count=1 -run 'Sample|Sequential' ./internal/replica/
	go test -race -count=1 -run 'Job' ./internal/sim/
	go test -race -count=1 -run 'SimJob|SimCoordinator|AdaptiveLease|WorkerRejectsUnknownKind' ./internal/fabric/
	go test -race -count=1 -run 'Telemetry|WorkerShipsCollectedSpans|WorkerCompletionLossSurfaces' ./internal/fabric/
	go test -race -count=1 ./internal/fabric/chaos/
	go test -race -count=1 -run 'Renew|Park|WorkLoop|CoordinatorRestartAbsorbs|FabricBodyCaps|LeaseExpiresWithoutRenewal' ./internal/fabric/
	$(MAKE) soak
	$(MAKE) bench-check

# soak runs the tier-2 chaos soak on its own under the race detector: a
# distributed sim-replica sweep with four workers plus one killed
# mid-run, seeded drop/delay/5xx/corrupt chaos on every worker's
# transport, server-side injected errors and an early coordinator
# blackout — the run must produce payloads byte-identical to the clean
# local run, with every surviving worker riding the blackout out parked
# instead of failing. The chaos seed is fixed in the test, so the fault
# schedule it survives is the same one every time (and is pinned
# byte-for-byte by the chaos package's golden schedule test).
soak:
	go test -race -count=1 -run 'TestChaosSoak' -v ./internal/fabric/

# tier2 ends with bench-check, the benchmark regression gate: it reruns
# two benchmarks and fails (via benchjson -compare) when the fresh
# numbers regress past tolerance vs. the recorded trajectory files. The
# telemetry-merge benchmark is pure CPU over in-memory snapshots — no
# HTTP, no simulator — so it gates at the default 10%. The end-to-end
# sim-replica throughput benchmark drives real goroutine pools through
# an HTTP coordinator and its numbers move with machine load (the
# recorded trajectory itself shows workers=4 below workers=1), so it
# gates at 35% — wide enough to ignore scheduler jitter, tight enough
# to catch a telemetry push on the completion path halving throughput.
bench-check:
	go test -run '^$$' -bench 'BenchmarkTelemetryMergeThroughput' -benchtime 200x \
		./internal/obs/ | \
		go run ./cmd/benchjson -compare BENCH_PR9.json
	go test -run '^$$' -bench 'BenchmarkSimReplicaThroughput' -benchtime 5x \
		./internal/fabric/ | \
		go run ./cmd/benchjson -compare BENCH_PR8.json -tolerance 0.35

# bench regenerates every paper artifact under timing, including the
# serial-vs-parallel sweep comparison, then remeasures the simulator step
# benchmarks and refreshes the "current" section of BENCH_PR6.json (the
# first point of the ROADMAP's performance trajectory; the committed
# "baseline" section — the pre-refactor numbers — is preserved). It also
# measures the distributed sweep fabric's end-to-end throughput —
# cells/sec through the coordinator HTTP protocol at 1, 4, and 8
# workers — into BENCH_PR7.json, the sim-replica kind's distributed
# replica throughput the same way into BENCH_PR8.json, and the
# coordinator-side telemetry snapshot merge rate into BENCH_PR9.json.
bench:
	go test -bench=. -benchtime=1x .
	go test -run '^$$' -bench 'BenchmarkSwarmStep|BenchmarkEventsimStep' -benchtime 20x \
		./internal/swarm/ ./internal/eventsim/ | \
		go run ./cmd/benchjson -o BENCH_PR6.json -label "struct-of-arrays hot paths, indexed event timers"
	go test -run '^$$' -bench 'BenchmarkFabricThroughput' -benchtime 5x \
		./internal/fabric/ | \
		go run ./cmd/benchjson -o BENCH_PR7.json -label "distributed sweep fabric throughput"
	go test -run '^$$' -bench 'BenchmarkSimReplicaThroughput' -benchtime 5x \
		./internal/fabric/ | \
		go run ./cmd/benchjson -o BENCH_PR8.json -label "distributed sim-replica throughput"
	go test -run '^$$' -bench 'BenchmarkTelemetryMergeThroughput' -benchtime 200x \
		./internal/obs/ | \
		go run ./cmd/benchjson -o BENCH_PR9.json -label "fleet telemetry snapshot merge"

# profile runs a small instrumented sweep with every observability sink
# attached: a JSON metrics snapshot and a Chrome trace land in ./prof/,
# and /debug/pprof + /metrics are served on localhost:6060 for the
# duration of the run (try `go tool pprof http://localhost:6060/debug/pprof/profile?seconds=2`
# from another shell while it runs).
profile:
	mkdir -p prof
	go run ./cmd/sweep -dim p,rho -steps 30,30 -scheme CMFSD \
		-metrics-out prof/sweep-metrics.json -trace-out prof/sweep-trace.json \
		-pprof localhost:6060 -stats > prof/sweep-table.txt
	@echo "wrote prof/sweep-metrics.json prof/sweep-trace.json prof/sweep-table.txt"
