# Verification tiers. tier1 is the gate every change must keep green;
# tier2 adds static analysis and the race detector over the concurrent
# paths (runner pool, two-tier solve cache incl. runner/diskcache, the
# parallel experiment fan-outs, simulators).

.PHONY: tier1 tier2 bench

tier1:
	go build ./... && go test ./...

tier2:
	go vet ./... && go test -race ./...

# bench regenerates every paper artifact under timing, including the
# serial-vs-parallel sweep comparison.
bench:
	go test -bench=. -benchtime=1x .
