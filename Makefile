# Verification tiers. tier1 is the gate every change must keep green;
# tier2 adds static analysis and the race detector over the concurrent
# paths (runner pool, two-tier solve cache incl. runner/diskcache, the
# replica engine, the parallel experiment fan-outs, simulators). The
# explicit replica runs exercise the engine at R >= 2 — multiple replicas
# of one cell sharing a Sim value across pool workers — which is exactly
# where an accidental shared-state mutation would race.

.PHONY: tier1 tier2 bench

tier1:
	go build ./... && go test ./...

tier2:
	go vet ./... && go test -race ./...
	go test -race -count=1 -run 'Replica|Merge|WorkerCountInvariance' ./internal/replica/ ./internal/stats/
	go test -race -count=1 -run 'ReplicatedDeterminism|ReplicasExtend' ./internal/experiments/

# bench regenerates every paper artifact under timing, including the
# serial-vs-parallel sweep comparison.
bench:
	go test -bench=. -benchtime=1x .
