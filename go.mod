module mfdl

go 1.22
