// Command btsim runs the two BitTorrent simulators that back the paper
// reproduction: the flow-level event-driven simulator (validating the fluid
// models, experiment E9) and the chunk-level swarm simulator (validating
// the multi-file torrent schemes at the mechanism level), plus the Adapt
// mechanism evaluation the paper leaves as future work (E8).
//
// Usage:
//
//	btsim [flags] validate   fluid-vs-simulation comparison for all schemes
//	btsim [flags] adapt      Adapt controller under growing cheater fractions
//	btsim [flags] swarm      chunk-level MFCD vs CMFSD comparison
//	btsim [flags] transient  flash-crowd trajectory, fluid vs simulation
//	btsim [flags] hetero     heterogeneous bandwidth classes vs multi-class fluid
//	btsim [flags] adaptparams  probe φ/υ/period settings (paper's future work)
//	btsim [flags] run        one flow-level run of -scheme with full stats
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"mfdl/internal/adapt"
	"mfdl/internal/eventsim"
	"mfdl/internal/experiments"
	"mfdl/internal/fluid"
	"mfdl/internal/swarm"
	"mfdl/internal/table"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "btsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("btsim", flag.ContinueOnError)
	var (
		k       = fs.Int("k", 10, "number of files K")
		mu      = fs.Float64("mu", 0.2, "upload bandwidth μ (time-rescaled default)")
		eta     = fs.Float64("eta", 0.5, "sharing efficiency η")
		gamma   = fs.Float64("gamma", 0.5, "seed departure rate γ (time-rescaled default)")
		lambda0 = fs.Float64("lambda0", 1, "visiting rate λ₀")
		p       = fs.Float64("p", 0.9, "file correlation p")
		rho     = fs.Float64("rho", 0, "CMFSD allocation ratio ρ")
		scheme  = fs.String("scheme", "CMFSD", "scheme for 'run': MTCD, MTSD, MFCD, CMFSD")
		horizon = fs.Float64("horizon", 4000, "simulated time (rounds for 'swarm')")
		warmup  = fs.Float64("warmup", 800, "warmup time excluded from statistics")
		seed    = fs.Uint64("seed", 1, "RNG seed")
		format  = fs.String("format", "ascii", "output format: ascii, csv, tsv, or markdown")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: btsim [flags] validate|adapt|swarm|transient|hetero|adaptparams|run")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one subcommand")
	}
	params := fluid.Params{Mu: *mu, Eta: *eta, Gamma: *gamma}
	set := experiments.SimSettings{
		Params: params, K: *k, Lambda0: *lambda0,
		Horizon: *horizon, Warmup: *warmup, Seed: *seed,
	}
	emit := func(tb *table.Table) error {
		if err := tb.Write(os.Stdout, *format); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}
	switch fs.Arg(0) {
	case "validate":
		res, err := experiments.SimValidate(set, []float64{*p})
		if err != nil {
			return err
		}
		return emit(res.Table())
	case "adapt":
		ac := adapt.DefaultConfig
		// Scale the thresholds with μ (they are bandwidth differences).
		ac.Lower = -0.25 * params.Mu
		ac.Upper = 0.25 * params.Mu
		ac.Period = 5 / params.Gamma
		res, err := experiments.AdaptSweep(set, *p, ac,
			[]float64{0, 0.2, 0.4, 0.6, 0.8, 1})
		if err != nil {
			return err
		}
		return emit(res.Table())
	case "swarm":
		base := swarm.DefaultConfig
		base.P = *p
		base.TFTEfficiency = *eta
		base.Horizon = int(*horizon)
		base.Warmup = int(*warmup)
		base.Seed = *seed
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		res, err := experiments.SwarmCompare(ctx, base, []float64{0, 0.25, 0.5, 0.75, 1})
		if err != nil {
			return err
		}
		return emit(res.Table())
	case "adaptparams":
		res, err := experiments.AdaptParams(set, *p, 0.8,
			[]float64{0.05, 0.1, 0.25, 0.5},
			[]float64{0.1, 0.3},
			[]float64{2 / params.Gamma, 10 / params.Gamma})
		if err != nil {
			return err
		}
		if err := emit(res.Table()); err != nil {
			return err
		}
		best := res.Best()
		fmt.Printf("best setting: %s (clean ρ %.3f, cheated ρ %.3f)\n",
			res.Clean[best].Label, res.Clean[best].MeanFinalRho, res.Cheated[best].MeanFinalRho)
		return nil
	case "hetero":
		res, err := experiments.Hetero(set, 2**lambda0, []experiments.HeteroClass{
			{Name: "broadband", Mu: 2 * params.Mu, Weight: 4, Fraction: 0.3},
			{Name: "cable", Mu: params.Mu, Weight: 2, Fraction: 0.4},
			{Name: "dsl", Mu: params.Mu / 2, Weight: 1, Fraction: 0.3},
		})
		if err != nil {
			return err
		}
		return emit(res.Table())
	case "transient":
		tset := set
		if tset.Horizon > 300 {
			tset.Horizon = 150 // a dozen residence times at the rescaled rates
		}
		res, err := experiments.Transient(tset, *p, *rho, 300)
		if err != nil {
			return err
		}
		return emit(res.Table())
	case "run":
		var sc eventsim.Scheme
		switch *scheme {
		case "MTCD":
			sc = eventsim.MTCD
		case "MTSD":
			sc = eventsim.MTSD
		case "MFCD":
			sc = eventsim.MFCD
		case "CMFSD":
			sc = eventsim.CMFSD
		default:
			return fmt.Errorf("unknown scheme %q", *scheme)
		}
		cfg := eventsim.Config{
			Params: params, K: *k, Lambda0: *lambda0, P: *p,
			Scheme: sc, Rho: *rho,
			Horizon: *horizon, Warmup: *warmup, Seed: *seed,
		}
		res, err := eventsim.Run(cfg)
		if err != nil {
			return err
		}
		tb := table.New(fmt.Sprintf("%s flow-level run (p=%.2f, ρ=%.2f, horizon=%g)",
			*scheme, *p, *rho, *horizon),
			"metric", "value")
		tb.MustAddRow("completed users", fmt.Sprintf("%d", res.CompletedUsers))
		tb.MustAddRow("avg online time per file", table.Fmt(res.AvgOnlinePerFile))
		tb.MustAddRow("avg download time per file", table.Fmt(res.AvgDownloadPerFile))
		tb.MustAddRow("mean downloaders", table.Fmt(res.MeanDownloaders))
		tb.MustAddRow("mean seeds", table.Fmt(res.MeanSeeds))
		if err := emit(tb); err != nil {
			return err
		}
		cls := table.New("per-class statistics", "class", "completed", "online", "±95%", "download")
		for _, c := range res.Classes {
			if c.Completed == 0 {
				continue
			}
			cls.MustAddRow(fmt.Sprintf("%d", c.Class), fmt.Sprintf("%d", c.Completed),
				table.Fmt(c.OnlineTime.Mean()), table.Fmt(c.OnlineTime.CI95()),
				table.Fmt(c.DownloadTime.Mean()))
		}
		return emit(cls)
	default:
		fs.Usage()
		return fmt.Errorf("unknown subcommand %q", fs.Arg(0))
	}
}
