// Command btsim runs the two BitTorrent simulators that back the paper
// reproduction: the flow-level event-driven simulator (validating the fluid
// models, experiment E9) and the chunk-level swarm simulator (validating
// the multi-file torrent schemes at the mechanism level), plus the Adapt
// mechanism evaluation the paper leaves as future work (E8).
//
// Usage:
//
//	btsim [flags] validate   fluid-vs-simulation comparison for all schemes
//	btsim [flags] adapt      Adapt controller under growing cheater fractions
//	btsim [flags] swarm      chunk-level MFCD vs CMFSD comparison
//	btsim [flags] transient  flash-crowd trajectory, fluid vs simulation
//	btsim [flags] hetero     heterogeneous bandwidth classes vs multi-class fluid
//	btsim [flags] adaptparams  probe φ/υ/period settings (paper's future work)
//	btsim [flags] run        one flow-level run of -scheme with full stats
//
// Every simulator-backed table runs -replicas independently seeded
// replicas per row on the replica engine (internal/replica) and, with
// -replicas > 1, reports each simulated metric as mean ± 95% CI. The
// default of one replica reproduces the unreplicated tables exactly, and
// for fixed (-seed, -replicas) the output is byte-identical at any
// -workers count.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"

	"mfdl/internal/adapt"
	"mfdl/internal/eventsim"
	"mfdl/internal/experiments"
	"mfdl/internal/fluid"
	"mfdl/internal/obs"
	"mfdl/internal/replica"
	"mfdl/internal/scheme"
	"mfdl/internal/sim"
	"mfdl/internal/swarm"
	"mfdl/internal/table"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "btsim:", err)
		os.Exit(1)
	}
}

// formats lists the table formats the -format flag accepts.
var formats = map[string]bool{
	"": true, "ascii": true, "csv": true, "tsv": true, "markdown": true, "md": true,
}

func run(args []string) error {
	fs := flag.NewFlagSet("btsim", flag.ContinueOnError)
	var (
		k        = fs.Int("k", 10, "number of files K")
		mu       = fs.Float64("mu", 0.2, "upload bandwidth μ (time-rescaled default)")
		eta      = fs.Float64("eta", 0.5, "sharing efficiency η")
		gamma    = fs.Float64("gamma", 0.5, "seed departure rate γ (time-rescaled default)")
		lambda0  = fs.Float64("lambda0", 1, "visiting rate λ₀")
		p        = fs.Float64("p", 0.9, "file correlation p")
		rho      = fs.Float64("rho", 0, "CMFSD allocation ratio ρ")
		schemeFl = fs.String("scheme", "CMFSD", "scheme for 'run': MTCD, MTSD, MFCD, CMFSD")
		horizon  = fs.Float64("horizon", 4000, "simulated time (rounds for 'swarm')")
		warmup   = fs.Float64("warmup", 800, "warmup time excluded from statistics")
		seed     = fs.Uint64("seed", 1, "RNG seed (base of the replica seed derivation)")
		replicas = fs.Int("replicas", 1, "independently seeded simulation replicas per table row (>= 1)")
		workers  = fs.Int("workers", 0, "replica worker pool size (0 = all cores)")
		format   = fs.String("format", "ascii", "output format: ascii, csv, tsv, or markdown")
	)
	var ofl obs.Flags
	ofl.Register(fs)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: btsim [flags] validate|adapt|swarm|transient|hetero|adaptparams|run")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one subcommand")
	}
	// Strict flag validation: every float must be finite, the replica
	// count positive, the worker count non-negative and the format known —
	// the same rejection style cmd/sweep uses.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"mu", *mu}, {"eta", *eta}, {"gamma", *gamma}, {"lambda0", *lambda0},
		{"p", *p}, {"rho", *rho}, {"horizon", *horizon}, {"warmup", *warmup},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("-%s: value %v is not finite", f.name, f.v)
		}
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1, got %d", *replicas)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if !formats[*format] {
		return fmt.Errorf("unknown format %q (want ascii, csv, tsv, or markdown)", *format)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// The registry is nil unless -metrics-out/-trace-out/-pprof asked for
	// one; every simulator and pool below is then on the nil fast path and
	// the tables are byte-identical either way.
	ob, finishObs, err := ofl.Setup(false)
	if err != nil {
		return err
	}
	params := fluid.Params{Mu: *mu, Eta: *eta, Gamma: *gamma}
	set := experiments.SimSettings{
		Params: params, K: *k, Lambda0: *lambda0,
		Horizon: *horizon, Warmup: *warmup,
		Options: experiments.Options{
			Seed: *seed, Replicas: *replicas, Workers: *workers, Obs: ob,
		},
	}
	emit := func(tb *table.Table) error {
		if err := tb.Write(os.Stdout, *format); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}
	// The subcommands run inside a closure so the metrics snapshot and
	// trace stream are flushed on every return path.
	runErr := func() error {
		switch fs.Arg(0) {
		case "validate":
			res, err := experiments.SimValidate(ctx, set, []float64{*p})
			if err != nil {
				return err
			}
			return emit(res.Table())
		case "adapt":
			ac := adapt.DefaultConfig
			// Scale the thresholds with μ (they are bandwidth differences).
			ac.Lower = -0.25 * params.Mu
			ac.Upper = 0.25 * params.Mu
			ac.Period = 5 / params.Gamma
			res, err := experiments.AdaptSweep(ctx, set, *p, ac,
				[]float64{0, 0.2, 0.4, 0.6, 0.8, 1})
			if err != nil {
				return err
			}
			return emit(res.Table())
		case "swarm":
			base := swarm.DefaultConfig
			base.P = *p
			base.TFTEfficiency = *eta
			base.Horizon = int(*horizon)
			base.Warmup = int(*warmup)
			base.Seed = *seed
			res, err := experiments.SwarmCompare(ctx, base, []float64{0, 0.25, 0.5, 0.75, 1}, *replicas, ob)
			if err != nil {
				return err
			}
			return emit(res.Table())
		case "adaptparams":
			res, err := experiments.AdaptParams(ctx, set, *p, 0.8,
				[]float64{0.05, 0.1, 0.25, 0.5},
				[]float64{0.1, 0.3},
				[]float64{2 / params.Gamma, 10 / params.Gamma})
			if err != nil {
				return err
			}
			if err := emit(res.Table()); err != nil {
				return err
			}
			best := res.Best()
			fmt.Printf("best setting: %s (clean ρ %.3f, cheated ρ %.3f)\n",
				res.Clean[best].Label, res.Clean[best].MeanFinalRho, res.Cheated[best].MeanFinalRho)
			return nil
		case "hetero":
			res, err := experiments.Hetero(ctx, set, 2**lambda0, []experiments.HeteroClass{
				{Name: "broadband", Mu: 2 * params.Mu, Weight: 4, Fraction: 0.3},
				{Name: "cable", Mu: params.Mu, Weight: 2, Fraction: 0.4},
				{Name: "dsl", Mu: params.Mu / 2, Weight: 1, Fraction: 0.3},
			})
			if err != nil {
				return err
			}
			return emit(res.Table())
		case "transient":
			tset := set
			if tset.Horizon > 300 {
				tset.Horizon = 150 // a dozen residence times at the rescaled rates
			}
			res, err := experiments.Transient(ctx, tset, *p, *rho, 300)
			if err != nil {
				return err
			}
			return emit(res.Table())
		case "run":
			sc, err := scheme.ParseSim(*schemeFl)
			if err != nil {
				return fmt.Errorf("unknown scheme %q", *schemeFl)
			}
			rsim, err := sim.New(sc, sim.Config{Flow: &eventsim.Config{
				Params: params, K: *k, Lambda0: *lambda0, P: *p,
				Rho:     *rho,
				Horizon: *horizon, Warmup: *warmup,
			}})
			if err != nil {
				return err
			}
			aggs, err := replica.Run(ctx, 1, func(int) replica.Sim {
				return rsim
			}, replica.Options{Replicas: *replicas, Workers: *workers, Seed: *seed, Obs: ob})
			if err != nil {
				return err
			}
			agg := aggs[0]
			rep := *replicas > 1
			title := fmt.Sprintf("%s flow-level run (p=%.2f, ρ=%.2f, horizon=%g)",
				sc, *p, *rho, *horizon)
			if rep {
				title = fmt.Sprintf("%s flow-level run (p=%.2f, ρ=%.2f, horizon=%g, R=%d)",
					sc, *p, *rho, *horizon, *replicas)
			}
			cols := []string{"metric", "value"}
			if rep {
				cols = []string{"metric", "value", "±95%"}
			}
			tb := table.New(title, cols...)
			addRow := func(metric, value string, ci float64) {
				if rep {
					tb.MustAddRow(metric, value, "±"+table.Fmt(ci))
				} else {
					tb.MustAddRow(metric, value)
				}
			}
			addRow("completed users", fmt.Sprintf("%d", int(agg.Count(replica.Completed))), 0)
			addRow("avg online time per file", table.Fmt(agg.Mean(replica.OnlinePerFile)), agg.CI95(replica.OnlinePerFile))
			addRow("avg download time per file", table.Fmt(agg.Mean(replica.DownloadPerFile)), agg.CI95(replica.DownloadPerFile))
			addRow("mean downloaders", table.Fmt(agg.Mean(replica.MeanDownloaders)), agg.CI95(replica.MeanDownloaders))
			addRow("mean seeds", table.Fmt(agg.Mean(replica.MeanSeeds)), agg.CI95(replica.MeanSeeds))
			if err := emit(tb); err != nil {
				return err
			}
			cls := table.New("per-class statistics (pooled over replicas)", "class", "completed", "online", "±95%", "download")
			if !rep {
				cls.Title = "per-class statistics"
			}
			for class := 1; class <= *k; class++ {
				n := int(agg.Count(replica.ClassKey(class, replica.Completed)))
				if n == 0 {
					continue
				}
				online := agg.Summary(replica.ClassKey(class, replica.OnlinePerFile))
				download := agg.Summary(replica.ClassKey(class, replica.DownloadPerFile))
				cls.MustAddRow(fmt.Sprintf("%d", class), fmt.Sprintf("%d", n),
					table.Fmt(online.Mean()), table.Fmt(online.CI95()),
					table.Fmt(download.Mean()))
			}
			return emit(cls)
		default:
			fs.Usage()
			return fmt.Errorf("unknown subcommand %q", fs.Arg(0))
		}
	}()
	if ferr := finishObs(); runErr == nil {
		runErr = ferr
	}
	return runErr
}
