package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 8192)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

// fast shrinks horizons so CLI tests stay quick.
var fast = []string{"-horizon", "800", "-warmup", "200"}

func TestRunSubcommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run(append(fast, "-scheme", "MTSD", "run"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "avg online time per file") || !strings.Contains(out, "per-class") {
		t.Fatalf("run output:\n%s", out)
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range []string{"MTCD", "MFCD", "CMFSD"} {
		if _, err := capture(t, func() error {
			return run(append(fast, "-scheme", scheme, "run"))
		}); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

func TestValidateSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run(append(fast, "validate")) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rel err") || !strings.Contains(out, "CMFSD") {
		t.Fatalf("validate output:\n%s", out)
	}
}

func TestTransientSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run(append(fast, "transient")) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Flash crowd") {
		t.Fatalf("transient output:\n%s", out)
	}
}

func TestSwarmSubcommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-horizon", "600", "-warmup", "150", "swarm"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Chunk-level") || !strings.Contains(out, "MFCD") {
		t.Fatalf("swarm output:\n%s", out)
	}
}

func TestRejections(t *testing.T) {
	cases := [][]string{
		nil,                         // missing subcommand
		{"explode"},                 // unknown subcommand
		{"-scheme", "FTP", "run"},   // unknown scheme
		{"-p", "2", "validate"},     // invalid correlation
		{"-mu", "nope", "validate"}, // unparsable flag
	}
	for i, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Fatalf("case %d accepted: %v", i, args)
		}
	}
}

func TestHeteroSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run(append(fast, "hetero")) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "broadband") || !strings.Contains(out, "dsl") {
		t.Fatalf("hetero output:\n%s", out)
	}
}

func TestAdaptParamsSubcommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-horizon", "600", "-warmup", "150", "adaptparams"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "best setting") {
		t.Fatalf("adaptparams output:\n%s", out)
	}
}

func TestFlagRejections(t *testing.T) {
	cases := [][]string{
		{"-replicas", "0", "validate"},   // replicas must be >= 1
		{"-replicas", "-3", "validate"},  // negative replicas
		{"-workers", "-1", "validate"},   // negative workers
		{"-mu", "NaN", "validate"},       // non-finite model parameter
		{"-horizon", "+Inf", "validate"}, // non-finite horizon
		{"-format", "xml", "validate"},   // unknown format
	}
	for i, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Fatalf("case %d accepted: %v", i, args)
		}
	}
}

func TestReplicatedValidate(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-horizon", "400", "-warmup", "100", "-replicas", "2", "validate"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "±95%") {
		t.Fatalf("replicated validate output carries no ±95%% column:\n%s", out)
	}
}

func TestReplicatedRun(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-horizon", "400", "-warmup", "100", "-replicas", "3", "-scheme", "MTSD", "run"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "R=3") || !strings.Contains(out, "±95%") {
		t.Fatalf("replicated run output:\n%s", out)
	}
}

// TestRunWorkerInvariance checks the CLI-level determinism promise: same
// seed and replica count, different worker counts, identical bytes.
func TestRunWorkerInvariance(t *testing.T) {
	runAt := func(workers string) string {
		out, err := capture(t, func() error {
			return run([]string{"-horizon", "400", "-warmup", "100",
				"-replicas", "3", "-workers", workers, "validate"})
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if one, eight := runAt("1"), runAt("8"); one != eight {
		t.Fatalf("output differs between -workers 1 and -workers 8:\n%s\nvs\n%s", one, eight)
	}
}
