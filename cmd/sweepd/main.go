// Command sweepd runs a parameter sweep as a distributed job: one
// coordinator process partitions the grid into cell leases, and any number
// of worker processes — on this machine or others — pull leases over HTTP,
// solve cells, and post results back. The final table is byte-identical to
// the same experiment run locally, at any worker count, even across worker
// crashes: expired leases are re-issued (work stealing) and completed
// cells persist in the coordinator's checkpoint store, so a restarted
// coordinator resumes instead of recomputing.
//
// Usage — two terminals:
//
//	sweepd serve -addr :8700 -dim p,rho -steps 9,10 -scheme CMFSD \
//	    -checkpoint-dir /tmp/sweepd
//	sweepd work -join http://localhost:8700 -parallel 4
//
// Or a single machine, one process:
//
//	sweepd serve -addr 127.0.0.1:0 -local-workers 8 -dim rho -steps 10
//
// Every worker pushes periodic telemetry — a heartbeat, a mergeable
// metrics snapshot and its completed trace spans — so the coordinator
// serves a fleet-merged Prometheus exposition on /metrics and a
// per-worker liveness/straggler view on GET /v1/fleet. Watch it live
// from a third terminal:
//
//	sweepd top -join http://localhost:8700
//
// `serve -fleet-out fleet.json` records the final fleet view,
// `-progress 5s` prints a fleet line on stderr while running, and a
// serve-side -trace-out file interleaves spans from every worker
// process into one Chrome trace. Telemetry is fire-and-forget and
// strictly off the completion path: results are byte-identical with it
// on or off.
//
// Two job kinds can be served (-job):
//
//	fluid        the default: a fluid-model steady-state sweep over the
//	             same grid and model flags as `sweep` (-dim, -from, -to,
//	             -steps, -scheme, -k, -mu, -eta, -gamma, -lambda0, -p,
//	             -rho, -theta).
//	simvalidate  the fluid-vs-simulation validation (mfdl's simvalidate):
//	             every scheme at every correlation in -ps, with -replicas
//	             independently seeded simulation replicas per row. The
//	             cells are (row × replica) pairs; the finished table is
//	             byte-identical to a local `mfdl simvalidate` at the same
//	             seed and replica count.
//
// Simulation cells persist in a keyed sample store (-sample-dir): a later
// serve with a larger -replicas replays every stored sample and only
// simulates the new ones. With -ci-target the serve runs multiple rounds,
// doubling the replica count (up to -replicas-max) until every row's 95%
// confidence half-width of -ci-metric reaches the target; each round is a
// fresh job at the same address, so workers started with `work -loop`
// keep pulling rounds until the coordinator exits.
//
// -lease-target sizes leases adaptively: the coordinator tracks each
// worker's observed seconds per cell and grants batches that take roughly
// the target wall-time, so slow workers hold fewer cells hostage.
//
// `serve` prints the finished table on stdout and exits. With -addr-file
// the actual listen address (useful with port 0) is written to a file for
// scripts to pick up. `work` needs only -join; it fetches the job
// description from the coordinator and refuses kinds its build does not
// register.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"flag"

	"mfdl/internal/experiments"
	"mfdl/internal/fabric"
	"mfdl/internal/fabric/chaos"
	"mfdl/internal/fluid"
	"mfdl/internal/gridflag"
	"mfdl/internal/obs"
	"mfdl/internal/replica"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
	"mfdl/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: sweepd serve|work [flags] (run with -h for details)")
	}
	switch args[0] {
	case "serve":
		return serve(args[1:])
	case "work":
		return work(args[1:])
	case "top":
		return top(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want serve, work, or top)", args[0])
	}
}

// formats lists the table formats the -format flag accepts.
var formats = map[string]bool{
	"": true, "ascii": true, "csv": true, "tsv": true, "markdown": true, "md": true,
}

// parseFloats parses a comma-separated list of finite floats.
func parseFloats(name, s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: %w", name, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("-%s: value %v is not finite", name, v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: empty list", name)
	}
	return out, nil
}

// parseWindows parses comma-separated start-end duration pairs
// ("2s-4s,30s-35s") into chaos blackout windows.
func parseWindows(s string) ([]chaos.Window, error) {
	if s == "" {
		return nil, nil
	}
	var out []chaos.Window
	for _, part := range strings.Split(s, ",") {
		a, b, ok := strings.Cut(strings.TrimSpace(part), "-")
		if !ok {
			return nil, fmt.Errorf("-chaos-blackout: window %q is not start-end", part)
		}
		start, err := time.ParseDuration(a)
		if err != nil {
			return nil, fmt.Errorf("-chaos-blackout: %w", err)
		}
		end, err := time.ParseDuration(b)
		if err != nil {
			return nil, fmt.Errorf("-chaos-blackout: %w", err)
		}
		out = append(out, chaos.Window{Start: start, End: end})
	}
	return out, nil
}

func serve(args []string) error {
	fs := flag.NewFlagSet("sweepd serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8700", "coordinator listen address (port 0 picks a free port)")
		addrFile = fs.String("addr-file", "", "write the actual listen address to this file (for scripts using port 0)")
		job      = fs.String("job", "fluid", "job kind to serve: fluid (steady-state sweep) or simvalidate (fluid-vs-simulation)")
		dim      = fs.String("dim", "p", "fluid: swept dimensions (comma-separated): p, rho, k, mu, gamma, eta, lambda0, theta")
		from     = fs.String("from", "0.05", "fluid: sweep start, one value or one per dimension")
		to       = fs.String("to", "1", "fluid: sweep end, one value or one per dimension")
		steps    = fs.String("steps", "10", "fluid: sweep intervals, one value or one per dimension")
		schemeF  = fs.String("scheme", "CMFSD", "fluid: scheme: MTCD, MTSD, MFCD, CMFSD")
		k        = fs.Int("k", 10, "number of files K")
		mu       = fs.Float64("mu", 0.02, "upload bandwidth μ")
		eta      = fs.Float64("eta", 0.5, "sharing efficiency η")
		gamma    = fs.Float64("gamma", 0.05, "seed departure rate γ")
		lambda0  = fs.Float64("lambda0", 1, "visiting rate λ₀")
		p        = fs.Float64("p", 0.9, "fluid: file correlation p")
		rho      = fs.Float64("rho", 0, "fluid: CMFSD allocation ratio ρ")
		theta    = fs.Float64("theta", 0, "fluid: downloader abort rate θ (0 = paper's churn-free model)")
		// Simulation flags (-job simvalidate).
		ps       = fs.String("ps", "0.5,0.9", "simvalidate: comma-separated file correlations, one scheme matrix per value")
		horizon  = fs.Float64("horizon", 4000, "simvalidate: simulated horizon")
		warmup   = fs.Float64("warmup", 800, "simvalidate: measurement warmup")
		seed     = fs.Uint64("seed", 1, "simvalidate: base of the replica seed derivation")
		replicas = fs.Int("replicas", 1, "simvalidate: independently seeded replicas per row (>= 1)")
		ciTarget = fs.Float64("ci-target", 0, "simvalidate: run growing rounds until every row's 95% CI half-width of -ci-metric reaches this (0 = one round at -replicas)")
		ciMetric = fs.String("ci-metric", replica.OnlinePerFile, "simvalidate: stopping metric for -ci-target")
		replMax  = fs.Int("replicas-max", 64, "simvalidate: replica growth bound per serve under -ci-target")
		smplDir  = fs.String("sample-dir", "", "simvalidate: keyed replica-sample store; later serves with more replicas replay stored samples (empty = private temp dir, no reuse)")
		// Fabric flags.
		ckptDir     = fs.String("checkpoint-dir", "", "checkpoint store for completed cells; a restarted coordinator resumes from it (empty = private temp dir, no resume)")
		leaseCells  = fs.Int("lease-cells", 8, "cells granted per lease (the adaptive upper bound with -lease-target)")
		leaseTTL    = fs.Duration("lease-ttl", 30*time.Second, "lease exclusivity window; a worker silent for longer forfeits its cells")
		leaseTarget = fs.Duration("lease-target", 0, "size each worker's leases to roughly this wall-time from its observed cell pace (0 = fixed -lease-cells batches)")
		localW      = fs.Int("local-workers", 0, "also run this many in-process workers (0 = rely on `sweepd work` processes)")
		format      = fs.String("format", "ascii", "output format: ascii, csv, tsv, or markdown")
		stats       = fs.Bool("stats", false, "print fabric progress counters on stderr")
		fleetOut    = fs.String("fleet-out", "", "write the final fleet view (per-worker liveness, rates, stragglers) as JSON to this file")
		progress    = fs.Duration("progress", 0, "print a fleet progress line (workers, cells/sec, stragglers) on stderr at this interval (0 = off)")
		// Chaos flags: deterministic server-side fault injection for soaks.
		chaosSeed  = fs.Uint64("chaos-seed", 0, "chaos: fault-plan seed; the same seed replays the identical fault schedule")
		chaos5xx   = fs.Float64("chaos-5xx", 0, "chaos: probability in [0,1) of substituting a 503 for a served response (0 = off)")
		chaosDelay = fs.Duration("chaos-delay-max", 0, "chaos: delay each served request by a deterministic uniform draw from [0, this) (0 = off)")
		chaosBlack = fs.String("chaos-blackout", "", "chaos: comma-separated start-end elapsed-time windows (e.g. 2s-4s,30s-35s) during which every request is rejected with 503")
	)
	var ofl obs.Flags
	ofl.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if !formats[*format] {
		return fmt.Errorf("unknown format %q (want ascii, csv, tsv, or markdown)", *format)
	}
	if *leaseTarget < 0 {
		return fmt.Errorf("-lease-target must be >= 0, got %v", *leaseTarget)
	}
	reg, finishObs, err := ofl.Setup(*stats)
	if err != nil {
		return err
	}
	// Coordinator-side spans carry the serve process's real pid, so a
	// -trace-out file interleaves cleanly with the worker spans shipped
	// in over telemetry (each tagged with its own origin pid).
	reg.SetSpanIdentity(os.Getpid())
	windows, err := parseWindows(*chaosBlack)
	if err != nil {
		return err
	}
	chaosPlan, err := chaos.NewPlan(chaos.Config{
		Seed: *chaosSeed, Error5xxProb: *chaos5xx,
		DelayMax: *chaosDelay, BlackoutWindows: windows,
	}, reg)
	if err != nil {
		return err
	}
	params := fluid.Params{Mu: *mu, Eta: *eta, Gamma: *gamma}
	copts := fabric.CoordinatorOptions{
		LeaseCells: *leaseCells, LeaseTTL: *leaseTTL,
		TargetLeaseSeconds: leaseTarget.Seconds(), Obs: reg,
	}
	sh := &serveHost{
		addr: *addr, addrFile: *addrFile, ckptDir: *ckptDir,
		localWorkers: *localW, format: *format, stats: *stats, reg: reg,
		fleetOut: *fleetOut, progress: *progress, chaos: chaosPlan,
	}
	var serveErr error
	switch *job {
	case "fluid":
		grid, err := gridflag.Grid(*dim, *from, *to, *steps)
		if err != nil {
			return err
		}
		sc, err := scheme.Parse(*schemeF)
		if err != nil {
			return err
		}
		spec := experiments.SweepSpec{
			Config: experiments.Config{
				Params: params, K: *k, Lambda0: *lambda0,
			},
			P: *p, Rho: *rho, Theta: *theta,
			Scheme:  sc,
			Grid:    grid,
			Options: experiments.Options{Obs: reg},
		}
		if err := spec.Config.Validate(); err != nil {
			return err
		}
		serveErr = sh.serveFluid(spec, copts)
	case "simvalidate":
		if *replicas < 1 {
			return fmt.Errorf("-replicas must be >= 1, got %d", *replicas)
		}
		if math.IsNaN(*ciTarget) || math.IsInf(*ciTarget, 0) || *ciTarget < 0 {
			return fmt.Errorf("-ci-target must be finite and >= 0, got %v", *ciTarget)
		}
		if *replMax < 1 {
			return fmt.Errorf("-replicas-max must be >= 1, got %d", *replMax)
		}
		psList, err := parseFloats("ps", *ps)
		if err != nil {
			return err
		}
		set := experiments.SimSettings{
			Params: params, K: *k, Lambda0: *lambda0,
			Horizon: *horizon, Warmup: *warmup,
			Options: experiments.Options{Seed: *seed, Replicas: *replicas, Obs: reg},
		}
		serveErr = sh.serveSimValidate(set, psList, *smplDir, simStop{
			target: *ciTarget, metric: *ciMetric, maxReplicas: *replMax,
		}, copts)
	default:
		return fmt.Errorf("unknown -job %q (want fluid or simvalidate)", *job)
	}
	if serveErr != nil {
		return serveErr
	}
	return finishObs()
}

// serveHost is the per-invocation serving machinery shared by both job
// kinds: the listener, the swappable handler (sequential-stopping rounds
// replace the coordinator under one address), the checkpoint store, and
// the in-process workers.
type serveHost struct {
	addr, addrFile string
	ckptDir        string
	localWorkers   int
	format         string
	stats          bool
	reg            *obs.Registry
	fleetOut       string
	progress       time.Duration
	chaos          *chaos.Plan

	mu      sync.Mutex
	handler http.Handler
	coord   *fabric.Coordinator
}

// ServeHTTP dispatches to the current round's coordinator.
func (sh *serveHost) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sh.mu.Lock()
	h := sh.handler
	sh.mu.Unlock()
	if h == nil {
		http.Error(w, "no job yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// swap installs the next round's coordinator.
func (sh *serveHost) swap(coord *fabric.Coordinator) {
	sh.mu.Lock()
	sh.coord = coord
	sh.handler = coord.Handler()
	sh.mu.Unlock()
}

// currentCoord returns the coordinator of the round in progress, if any.
func (sh *serveHost) currentCoord() *fabric.Coordinator {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.coord
}

// startProgress emits the periodic fleet line on stderr until ctx ends.
func (sh *serveHost) startProgress(ctx context.Context) {
	if sh.progress <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(sh.progress)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				coord := sh.currentCoord()
				if coord == nil {
					continue
				}
				f := coord.Fleet()
				var stragglers []string
				for _, w := range f.Workers {
					if w.Straggler {
						stragglers = append(stragglers, w.Worker)
					}
				}
				line := fmt.Sprintf("sweepd: fleet: %d/%d cells, %d workers (%d healthy, %d stale, %d lost), %.1f cells/s",
					f.Status.Done, f.Status.Total, len(f.Workers), f.Healthy, f.Stale, f.Lost, f.CellsPerSec)
				if len(stragglers) > 0 {
					line += ", stragglers: " + strings.Join(stragglers, ",")
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}()
}

// writeFleet writes the final fleet view as JSON to -fleet-out.
func (sh *serveHost) writeFleet() error {
	if sh.fleetOut == "" {
		return nil
	}
	coord := sh.currentCoord()
	if coord == nil {
		return nil
	}
	data, err := json.MarshalIndent(coord.Fleet(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(sh.fleetOut, append(data, '\n'), 0o644)
}

// openCheckpoint opens the configured checkpoint directory, or a private
// temp dir removed by cleanup.
func (sh *serveHost) openCheckpoint() (*diskcache.CheckpointStore, func(), error) {
	dir, cleanup := sh.ckptDir, func() {}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "sweepd-*")
		if err != nil {
			return nil, nil, err
		}
		dir, cleanup = tmp, func() { os.RemoveAll(tmp) }
	}
	store, err := diskcache.OpenCheckpoint(dir)
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return store, cleanup, nil
}

// listen binds the address, writes -addr-file, and returns the server
// (already accepting, dispatching through the swappable handler) and its
// base URL.
func (sh *serveHost) listen() (*http.Server, string, error) {
	ln, err := net.Listen("tcp", sh.addr)
	if err != nil {
		return nil, "", err
	}
	if sh.addrFile != "" {
		if err := os.WriteFile(sh.addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return nil, "", err
		}
	}
	// Chaos middleware (a transparent no-op on a nil plan) wraps the
	// swappable handler so sequential-stopping rounds share one fault
	// schedule; the header timeout keeps a stalled client from pinning an
	// accept slot (per-request timeouts live inside the coordinator
	// handler itself).
	srv := &http.Server{
		Handler:           sh.chaos.Middleware(sh),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go srv.Serve(ln)
	return srv, "http://" + ln.Addr().String(), nil
}

// startWorkers launches the in-process workers for one round and returns
// their error channel (one send per worker; nil on normal completion).
//
// Each worker gets a private registry, exactly like a `sweepd work`
// process: its counters reach the fleet /metrics view through the
// telemetry merge, and its cell spans ride the telemetry envelope into
// the coordinator's trace sink. Sharing the coordinator's registry
// would make every push ship (and MergedSnapshot re-sum) the whole
// shared registry — coordinator counters plus every other worker's —
// inflating /metrics roughly (N+1)x.
func (sh *serveHost) startWorkers(ctx context.Context, url string, samples *diskcache.SampleStore) <-chan error {
	errs := make(chan error, sh.localWorkers)
	for i := 0; i < sh.localWorkers; i++ {
		name := fmt.Sprintf("local-%d", i)
		wreg := obs.New()
		wreg.SetSpanIdentity(os.Getpid(), obs.L("worker", name))
		col := obs.NewSpanCollector(0)
		wreg.SetSpanSink(col)
		go func() {
			errs <- fabric.Work(ctx, url, fabric.WorkerOptions{
				Name: name, Obs: wreg, Spans: col, Samples: samples,
			})
		}()
	}
	return errs
}

// printStats renders the fabric progress counters after the last round.
func (sh *serveHost) printStats(done, total int) {
	if !sh.stats {
		return
	}
	count := func(name string) uint64 { return sh.reg.Counter(name).Value() }
	fmt.Fprintf(os.Stderr, "sweepd: %d/%d cells done; leases granted %d, expired %d; completions %d (+%d duplicate, %d resumed)\n",
		done, total,
		count("fabric_leases_granted_total"),
		count("fabric_leases_expired_total"),
		count("fabric_cells_completed_total"),
		count("fabric_cells_duplicate_total"),
		count("fabric_cells_resumed_total"))
}

// serveFluid runs the classic single-round fluid sweep.
func (sh *serveHost) serveFluid(spec experiments.SweepSpec, copts fabric.CoordinatorOptions) error {
	store, cleanup, err := sh.openCheckpoint()
	if err != nil {
		return err
	}
	defer cleanup()
	coord, err := fabric.NewCoordinator(spec.JobSpec(), store, copts)
	if err != nil {
		return err
	}
	sh.swap(coord)
	srv, url, err := sh.listen()
	if err != nil {
		return err
	}
	defer srv.Close()
	st := coord.Status()
	fmt.Fprintf(os.Stderr, "sweepd: serving %d cells (%d resumed) on %s\n", st.Total, st.Done, url)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	sh.startProgress(ctx)
	workerErrs := sh.startWorkers(ctx, url, nil)
	for i := 0; i < sh.localWorkers; i++ {
		if err := <-workerErrs; err != nil {
			return err
		}
	}
	cells, err := coord.Result(ctx)
	if err != nil {
		return err
	}
	res := &experiments.SweepResult{Spec: spec, Cells: cells}
	if err := res.Table().Write(os.Stdout, sh.format); err != nil {
		return err
	}
	final := coord.Status()
	sh.printStats(final.Done, final.Total)
	return sh.writeFleet()
}

// simStop is the serve-level sequential-stopping rule.
type simStop struct {
	target      float64
	metric      string
	maxReplicas int
}

// serveSimValidate runs the simvalidate job, one round per replica count.
// Every round is a fresh coordinator (new spec, new fingerprint) behind
// the same address; the shared sample store carries the samples forward,
// so round n+1 pre-marks everything round n computed and only the new
// replicas are simulated — the distributed spelling of "R grows, never
// resamples".
func (sh *serveHost) serveSimValidate(set experiments.SimSettings, ps []float64, sampleDir string, stop simStop, copts fabric.CoordinatorOptions) error {
	sdir, cleanupS := sampleDir, func() {}
	if sdir == "" {
		tmp, err := os.MkdirTemp("", "sweepd-samples-*")
		if err != nil {
			return err
		}
		sdir, cleanupS = tmp, func() { os.RemoveAll(tmp) }
	}
	defer cleanupS()
	samples, err := diskcache.OpenSamples(sdir)
	if err != nil {
		return err
	}
	samples.WithObs(sh.reg)
	copts.Samples = samples
	store, cleanup, err := sh.openCheckpoint()
	if err != nil {
		return err
	}
	defer cleanup()
	srv, url, err := sh.listen()
	if err != nil {
		return err
	}
	defer srv.Close()
	ctx, sigStop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer sigStop()
	sh.startProgress(ctx)

	r := set.Options.Replicas
	if stop.target > 0 && r < 2 {
		r = 2 // a confidence interval needs at least two samples
	}
	maxR := stop.maxReplicas
	if maxR < r {
		maxR = r
	}
	var plan *experiments.SimValidatePlan
	var aggs []replica.Agg
	var lastStatus fabric.Status
	for round := 1; ; round++ {
		set.Options.Replicas = r
		plan, err = experiments.PlanSimValidate(set, ps)
		if err != nil {
			return err
		}
		coord, err := fabric.NewCoordinator(plan.Spec, store, copts)
		if err != nil {
			return err
		}
		sh.swap(coord)
		st := coord.Status()
		fmt.Fprintf(os.Stderr, "sweepd: round %d: serving %d cells (%d resumed, R=%d) on %s\n",
			round, st.Total, st.Done, r, url)
		payloads, err := awaitPayloads(ctx, coord, sh.startWorkers(ctx, url, samples), sh.localWorkers)
		if err != nil {
			return err
		}
		lastStatus = coord.Status()
		if aggs, err = sim.ReduceJob(plan.Spec, payloads); err != nil {
			return err
		}
		if stop.target <= 0 {
			break
		}
		worst := 0.0
		for _, agg := range aggs {
			if ci := agg.CI95(stop.metric); ci > worst {
				worst = ci
			}
		}
		if worst <= stop.target || r >= maxR {
			fmt.Fprintf(os.Stderr, "sweepd: round %d: max CI95(%s) = %g (target %g), stopping at R=%d\n",
				round, stop.metric, worst, stop.target, r)
			break
		}
		if r *= 2; r > maxR {
			r = maxR
		}
	}
	res, err := plan.Result(aggs)
	if err != nil {
		return err
	}
	if err := res.Table().Write(os.Stdout, sh.format); err != nil {
		return err
	}
	sh.printStats(lastStatus.Done, lastStatus.Total)
	if sh.stats {
		st := samples.Stats()
		fmt.Fprintf(os.Stderr, "sweepd: sample store: %d hits / %d misses (%d stored, %d corrupt, %d evicted)\n",
			st.Hits, st.Misses, st.Stores, st.Corrupt, st.Evicted)
	}
	return sh.writeFleet()
}

// awaitPayloads waits for one round's payloads while watching the
// in-process workers: a worker error aborts the round (their normal nil
// completions are swallowed — remote workers may finish the job).
func awaitPayloads(ctx context.Context, coord *fabric.Coordinator, workerErrs <-chan error, workers int) ([][]byte, error) {
	type result struct {
		payloads [][]byte
		err      error
	}
	ch := make(chan result, 1)
	go func() {
		p, err := coord.Payloads(ctx)
		ch <- result{p, err}
	}()
	for {
		select {
		case r := <-ch:
			return r.payloads, r.err
		case err := <-workerErrs:
			if err != nil {
				return nil, err
			}
		}
	}
}

func work(args []string) error {
	fs := flag.NewFlagSet("sweepd work", flag.ContinueOnError)
	var (
		join     = fs.String("join", "", "coordinator URL, e.g. http://host:8700 (required)")
		parallel = fs.Int("parallel", 1, "cells computed concurrently by this worker")
		name     = fs.String("name", "", "worker name reported to the coordinator (default worker-<pid>)")
		loop     = fs.Bool("loop", false, "keep pulling jobs as the coordinator swaps them (sequential-stopping rounds); exit cleanly when it shuts down")
		smplDir  = fs.String("sample-dir", "", "keyed replica-sample store: simulation cells replay stored samples and persist fresh ones (empty = off)")
		smplAge  = fs.Duration("sample-prune-age", 0, "evict stored samples unused for longer than this before working (0 = off; requires -sample-dir)")
		smplSize = fs.Int64("sample-prune-size", 0, "evict least-recently-used stored samples down to this many bytes before working (0 = off; requires -sample-dir)")
		outage   = fs.Duration("max-outage", 0, "ride out coordinator outages up to this long by parking with capped jittered backoff instead of failing (0 = fail once retries are exhausted)")
		stats    = fs.Bool("stats", false, "print this worker's cell count on stderr when done")
		beat     = fs.Duration("heartbeat", time.Second, "telemetry push interval: heartbeat, metrics snapshot and completed spans go to the coordinator this often (negative = off)")
		// Chaos flags: deterministic worker-side fault injection for soaks.
		chaosSeed    = fs.Uint64("chaos-seed", 0, "chaos: fault-plan seed; the same seed replays the identical fault schedule")
		chaosDrop    = fs.Float64("chaos-drop", 0, "chaos: probability in [0,1) of dropping a request — half before, half after it reaches the coordinator (0 = off)")
		chaosDelay   = fs.Duration("chaos-delay-max", 0, "chaos: delay each request by a deterministic uniform draw from [0, this) (0 = off)")
		chaos5xx     = fs.Float64("chaos-5xx", 0, "chaos: probability in [0,1) of substituting a 503 for a response (0 = off)")
		chaosCorrupt = fs.Float64("chaos-corrupt", 0, "chaos: probability in [0,1) of corrupting a response body in flight (0 = off)")
	)
	var ofl obs.Flags
	ofl.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *join == "" {
		return fmt.Errorf("-join is required")
	}
	if *outage < 0 {
		return fmt.Errorf("-max-outage must be >= 0, got %v", *outage)
	}
	if *smplAge < 0 {
		return fmt.Errorf("-sample-prune-age must be >= 0, got %v", *smplAge)
	}
	if *smplSize < 0 {
		return fmt.Errorf("-sample-prune-size must be >= 0, got %d", *smplSize)
	}
	if (*smplAge > 0 || *smplSize > 0) && *smplDir == "" {
		return fmt.Errorf("-sample-prune-age and -sample-prune-size require -sample-dir")
	}
	reg, finishObs, err := ofl.Setup(*stats)
	if err != nil {
		return err
	}
	if reg == nil && *beat > 0 {
		// Telemetry is on by default: even without local observability
		// sinks the worker keeps a registry so heartbeats carry a real
		// metrics snapshot and spans to the coordinator's fleet view.
		reg = obs.New()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := fabric.WorkerOptions{
		Name: *name, Parallelism: *parallel, Obs: reg,
		Heartbeat: *beat, MaxOutage: *outage,
	}
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	chaosPlan, err := chaos.NewPlan(chaos.Config{
		Seed: *chaosSeed, DropProb: *chaosDrop, DelayMax: *chaosDelay,
		Error5xxProb: *chaos5xx, CorruptProb: *chaosCorrupt,
	}, reg)
	if err != nil {
		return err
	}
	if chaosPlan != nil {
		opts.Client = &http.Client{Transport: chaosPlan.Transport(opts.Name, nil)}
	}
	if reg != nil && *beat > 0 {
		// Stamp this process's identity onto every span and buffer
		// completed spans (alongside any -trace-out sink) so heartbeat
		// pushes ship them; the coordinator's -trace-out then assembles
		// one interleaved trace for the whole fleet.
		reg.SetSpanIdentity(os.Getpid(), obs.L("worker", opts.Name))
		col := obs.NewSpanCollector(0)
		reg.SetSpanSink(obs.Tee(reg.SpanSink(), col))
		opts.Spans = col
	}
	if *smplDir != "" {
		samples, err := diskcache.OpenSamples(*smplDir)
		if err != nil {
			return err
		}
		opts.Samples = samples.WithObs(reg)
		if *smplAge > 0 || *smplSize > 0 {
			pst, err := samples.Prune(diskcache.PruneOptions{MaxAge: *smplAge, MaxBytes: *smplSize})
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "sweepd: sample prune: removed %d samples (%d bytes), kept %d (%d bytes)\n",
				pst.Removed, pst.Freed, pst.Kept, pst.Remaining)
		}
	}
	runWorker := fabric.Work
	if *loop {
		runWorker = fabric.WorkLoop
	}
	if err := runWorker(ctx, *join, opts); err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "sweepd: worker %s computed %d cells\n", opts.Name,
			reg.Counter("fabric_worker_cells_total", obs.L("worker", opts.Name)).Value())
	}
	return finishObs()
}

// top polls the coordinator's fleet view and renders a live per-worker
// table: liveness state, throughput, median cell seconds, current lease
// and the straggler flag.
func top(args []string) error {
	fs := flag.NewFlagSet("sweepd top", flag.ContinueOnError)
	var (
		join     = fs.String("join", "", "coordinator URL, e.g. http://host:8700 (required)")
		interval = fs.Duration("interval", time.Second, "poll interval")
		once     = fs.Bool("once", false, "print a single table and exit (no screen clearing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *join == "" {
		return fmt.Errorf("-join is required")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	client := &http.Client{Timeout: 10 * time.Second}
	base := strings.TrimSuffix(*join, "/")
	first := true
	for {
		f, err := fetchFleet(ctx, client, base)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if first {
				return err
			}
			// After a successful poll, the coordinator going away is the
			// normal end of the run, not an error.
			fmt.Fprintln(os.Stderr, "sweepd: coordinator gone:", err)
			return nil
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderFleet(os.Stdout, f)
		if *once {
			return nil
		}
		first = false
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

// fetchFleet GETs and decodes one /v1/fleet view.
func fetchFleet(ctx context.Context, client *http.Client, base string) (fabric.Fleet, error) {
	var f fabric.Fleet
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/fleet", nil)
	if err != nil {
		return f, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return f, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return f, fmt.Errorf("GET /v1/fleet: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		return f, fmt.Errorf("GET /v1/fleet: %w", err)
	}
	return f, nil
}

// renderFleet writes one frame of the fleet table.
func renderFleet(w io.Writer, f fabric.Fleet) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKER\tSTATE\tCELLS\tCELLS/S\tP50(S)\tLEASE\tINFLIGHT\tAGE\tFLAGS")
	for _, wk := range f.Workers {
		leaseID := wk.LeaseID
		if leaseID == "" {
			leaseID = "-"
		}
		flags := ""
		if wk.Straggler {
			flags = "straggler"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.4g\t%s\t%d\t%.1fs\t%s\n",
			wk.Worker, wk.State, wk.CellsTotal, wk.CellsPerSec, wk.CellSecondsP50,
			leaseID, wk.InflightCells, wk.AgeSeconds, flags)
	}
	tw.Flush()
	fmt.Fprintf(w, "\n%d/%d cells done, %d leased; fleet %.1f cells/s, p50 %.4gs; %d healthy / %d stale / %d lost\n",
		f.Status.Done, f.Status.Total, f.Status.Leased,
		f.CellsPerSec, f.CellSecondsP50, f.Healthy, f.Stale, f.Lost)
}
