// Command sweepd runs a parameter sweep as a distributed job: one
// coordinator process partitions the grid into cell leases, and any number
// of worker processes — on this machine or others — pull leases over HTTP,
// solve cells, and post results back. The final table is byte-identical to
// `sweep` run locally over the same grid, at any worker count, even across
// worker crashes: expired leases are re-issued (work stealing) and
// completed cells persist in the coordinator's checkpoint store, so a
// restarted coordinator resumes instead of recomputing.
//
// Usage — two terminals:
//
//	sweepd serve -addr :8700 -dim p,rho -steps 9,10 -scheme CMFSD \
//	    -checkpoint-dir /tmp/sweepd
//	sweepd work -join http://localhost:8700 -parallel 4
//
// Or a single machine, one process:
//
//	sweepd serve -addr 127.0.0.1:0 -local-workers 8 -dim rho -steps 10
//
// `serve` accepts the same grid and model flags as `sweep` (-dim, -from,
// -to, -steps, -scheme, -k, -mu, -eta, -gamma, -lambda0, -p, -rho,
// -theta), prints the finished table on stdout and exits. With
// -addr-file the actual listen address (useful with port 0) is written to
// a file for scripts to pick up. `work` needs only -join; it fetches the
// job description from the coordinator.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"flag"

	"mfdl/internal/experiments"
	"mfdl/internal/fabric"
	"mfdl/internal/fluid"
	"mfdl/internal/gridflag"
	"mfdl/internal/obs"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: sweepd serve|work [flags] (run with -h for details)")
	}
	switch args[0] {
	case "serve":
		return serve(args[1:])
	case "work":
		return work(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want serve or work)", args[0])
	}
}

// formats lists the table formats the -format flag accepts.
var formats = map[string]bool{
	"": true, "ascii": true, "csv": true, "tsv": true, "markdown": true, "md": true,
}

func serve(args []string) error {
	fs := flag.NewFlagSet("sweepd serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8700", "coordinator listen address (port 0 picks a free port)")
		addrFile   = fs.String("addr-file", "", "write the actual listen address to this file (for scripts using port 0)")
		dim        = fs.String("dim", "p", "swept dimensions (comma-separated): p, rho, k, mu, gamma, eta, lambda0, theta")
		from       = fs.String("from", "0.05", "sweep start, one value or one per dimension")
		to         = fs.String("to", "1", "sweep end, one value or one per dimension")
		steps      = fs.String("steps", "10", "sweep intervals, one value or one per dimension")
		schemeF    = fs.String("scheme", "CMFSD", "scheme: MTCD, MTSD, MFCD, CMFSD")
		k          = fs.Int("k", 10, "number of files K")
		mu         = fs.Float64("mu", 0.02, "upload bandwidth μ")
		eta        = fs.Float64("eta", 0.5, "sharing efficiency η")
		gamma      = fs.Float64("gamma", 0.05, "seed departure rate γ")
		lambda0    = fs.Float64("lambda0", 1, "visiting rate λ₀")
		p          = fs.Float64("p", 0.9, "file correlation p")
		rho        = fs.Float64("rho", 0, "CMFSD allocation ratio ρ")
		theta      = fs.Float64("theta", 0, "downloader abort rate θ (0 = paper's churn-free model)")
		ckptDir    = fs.String("checkpoint-dir", "", "checkpoint store for completed cells; a restarted coordinator resumes from it (empty = private temp dir, no resume)")
		leaseCells = fs.Int("lease-cells", 8, "cells granted per lease")
		leaseTTL   = fs.Duration("lease-ttl", 30*time.Second, "lease exclusivity window; a worker silent for longer forfeits its cells")
		localW     = fs.Int("local-workers", 0, "also run this many in-process workers (0 = rely on `sweepd work` processes)")
		format     = fs.String("format", "ascii", "output format: ascii, csv, tsv, or markdown")
		stats      = fs.Bool("stats", false, "print fabric progress counters on stderr")
	)
	var ofl obs.Flags
	ofl.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	sc, err := scheme.Parse(*schemeF)
	if err != nil {
		return err
	}
	if !formats[*format] {
		return fmt.Errorf("unknown format %q (want ascii, csv, tsv, or markdown)", *format)
	}
	grid, err := gridflag.Grid(*dim, *from, *to, *steps)
	if err != nil {
		return err
	}
	reg, finishObs, err := ofl.Setup(*stats)
	if err != nil {
		return err
	}
	spec := experiments.SweepSpec{
		Config: experiments.Config{
			Params:  fluid.Params{Mu: *mu, Eta: *eta, Gamma: *gamma},
			K:       *k,
			Lambda0: *lambda0,
		},
		P: *p, Rho: *rho, Theta: *theta,
		Scheme:  sc,
		Grid:    grid,
		Options: experiments.Options{Obs: reg},
	}
	if err := spec.Config.Validate(); err != nil {
		return err
	}
	dir := *ckptDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "sweepd-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	store, err := diskcache.OpenCheckpoint(dir)
	if err != nil {
		return err
	}
	coord, err := fabric.NewCoordinator(spec.JobSpec(), store, fabric.CoordinatorOptions{
		LeaseCells: *leaseCells, LeaseTTL: *leaseTTL, Obs: reg,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	st := coord.Status()
	fmt.Fprintf(os.Stderr, "sweepd: serving %d cells (%d resumed) on http://%s\n",
		st.Total, st.Done, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	url := "http://" + ln.Addr().String()
	workerErrs := make(chan error, *localW)
	for i := 0; i < *localW; i++ {
		go func(i int) {
			workerErrs <- fabric.Work(ctx, url, fabric.WorkerOptions{
				Name: fmt.Sprintf("local-%d", i), Obs: reg,
			})
		}(i)
	}
	for i := 0; i < *localW; i++ {
		if err := <-workerErrs; err != nil {
			return err
		}
	}
	cells, err := coord.Result(ctx)
	if err != nil {
		return err
	}
	res := &experiments.SweepResult{Spec: spec, Cells: cells}
	if err := res.Table().Write(os.Stdout, *format); err != nil {
		return err
	}
	if *stats {
		final := coord.Status()
		fmt.Fprintf(os.Stderr, "sweepd: %d/%d cells done; leases granted %d, expired %d; completions %d (+%d duplicate, %d resumed)\n",
			final.Done, final.Total,
			reg.Counter("fabric_leases_granted_total").Value(),
			reg.Counter("fabric_leases_expired_total").Value(),
			reg.Counter("fabric_cells_completed_total").Value(),
			reg.Counter("fabric_cells_duplicate_total").Value(),
			reg.Counter("fabric_cells_resumed_total").Value())
	}
	return finishObs()
}

func work(args []string) error {
	fs := flag.NewFlagSet("sweepd work", flag.ContinueOnError)
	var (
		join     = fs.String("join", "", "coordinator URL, e.g. http://host:8700 (required)")
		parallel = fs.Int("parallel", 1, "cells computed concurrently by this worker")
		name     = fs.String("name", "", "worker name reported to the coordinator (default worker-<pid>)")
		stats    = fs.Bool("stats", false, "print this worker's cell count on stderr when done")
	)
	var ofl obs.Flags
	ofl.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *join == "" {
		return fmt.Errorf("-join is required")
	}
	reg, finishObs, err := ofl.Setup(*stats)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := fabric.WorkerOptions{Name: *name, Parallelism: *parallel, Obs: reg}
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if err := fabric.Work(ctx, *join, opts); err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "sweepd: worker %s computed %d cells\n", opts.Name,
			reg.Counter("fabric_worker_cells_total", obs.L("worker", opts.Name)).Value())
	}
	return finishObs()
}
