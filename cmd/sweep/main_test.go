package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestSweepRho(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-dim", "rho", "-from", "0", "-to", "1", "-steps", "2", "-scheme", "CMFSD", "-p", "0.9"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Sweep of rho") {
		t.Fatalf("output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Fatalf("row count wrong:\n%s", out)
	}
}

func TestSweepEtaMTCD(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-dim", "eta", "-from", "0.3", "-to", "1", "-steps", "2", "-scheme", "MTCD"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "avg online/file") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestSweepKDimension(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-dim", "k", "-from", "2", "-to", "6", "-steps", "2", "-scheme", "MTSD"})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepLambda0Invariance(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-dim", "lambda0", "-from", "1", "-to", "10", "-steps", "1", "-scheme", "MTSD"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// MTSD online per file is 80 regardless of λ₀: both rows identical.
	if strings.Count(out, "80") < 2 {
		t.Fatalf("λ₀ sweep should be flat at 80:\n%s", out)
	}
}

func TestSweepRejections(t *testing.T) {
	cases := [][]string{
		{"-dim", "flux"},                        // unknown dimension
		{"-scheme", "FTP"},                      // unknown scheme
		{"-steps", "0"},                         // bad steps
		{"extra"},                               // positional arg
		{"-dim", "p", "-from", "2", "-to", "3"}, // p out of range
	}
	for i, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Fatalf("case %d accepted: %v", i, args)
		}
	}
}
