package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestSweepRho(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-dim", "rho", "-from", "0", "-to", "1", "-steps", "2", "-scheme", "CMFSD", "-p", "0.9"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Sweep of rho") {
		t.Fatalf("output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, rule, 3 rows
		t.Fatalf("row count wrong:\n%s", out)
	}
}

func TestSweepEtaMTCD(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-dim", "eta", "-from", "0.3", "-to", "1", "-steps", "2", "-scheme", "MTCD"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "avg online/file") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestSweepKDimension(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-dim", "k", "-from", "2", "-to", "6", "-steps", "2", "-scheme", "MTSD"})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepLambda0Invariance(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-dim", "lambda0", "-from", "1", "-to", "10", "-steps", "1", "-scheme", "MTSD"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// MTSD online per file is 80 regardless of λ₀: both rows identical.
	if strings.Count(out, "80") < 2 {
		t.Fatalf("λ₀ sweep should be flat at 80:\n%s", out)
	}
}

func TestSweepRejections(t *testing.T) {
	cases := [][]string{
		{"-dim", "flux"},                        // unknown dimension
		{"-scheme", "FTP"},                      // unknown scheme
		{"-steps", "0"},                         // bad steps
		{"extra"},                               // positional arg
		{"-dim", "p", "-from", "2", "-to", "3"}, // p out of range
		{"-from", "1", "-to", "0.5"},            // inverted range
		{"-from", "NaN"},                        // non-finite bound
		{"-to", "+Inf"},                         // non-finite bound
		{"-from", "Infinity"},                   // non-finite bound
		{"-format", "xml"},                      // unknown format
		{"-workers", "-1"},                      // negative pool
		{"-dim", "p,rho", "-from", "0,0,0"},     // arity mismatch
		{"-dim", "p,p"},                         // duplicate dimension
		{"-dim", "p,rho", "-steps", "3,0"},      // bad steps on one axis
		{"-from", "zero"},                       // unparsable bound
	}
	for i, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Fatalf("case %d accepted: %v", i, args)
		}
	}
}

func TestSweepMultiDim(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-dim", "p,rho", "-from", "0.1,0", "-to", "0.9,1",
			"-steps", "2", "-scheme", "CMFSD"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Sweep of p,rho") {
		t.Fatalf("title wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3+9 { // title, header, rule, 3×3 cells
		t.Fatalf("row count wrong (%d lines):\n%s", len(lines), out)
	}
}

// The headline determinism guarantee, end to end through the CLI: the
// same grid must render byte-identically at every worker count.
func TestSweepWorkersByteIdentical(t *testing.T) {
	var base string
	for _, workers := range []string{"1", "4", "8"} {
		out, err := capture(t, func() error {
			return run([]string{"-dim", "p,rho", "-from", "0.1,0", "-to", "0.9,1",
				"-steps", "2,2", "-scheme", "CMFSD", "-workers", workers})
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == "" {
			base = out
			continue
		}
		if out != base {
			t.Fatalf("-workers %s output differs:\n%s\nvs\n%s", workers, out, base)
		}
	}
}

func TestSweepBroadcastAndFormats(t *testing.T) {
	for _, format := range []string{"csv", "tsv", "markdown"} {
		out, err := capture(t, func() error {
			return run([]string{"-dim", "eta,rho", "-from", "0.4", "-to", "0.8",
				"-steps", "1", "-scheme", "CMFSD", "-format", format})
		})
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !strings.Contains(out, "avg online/file") {
			t.Fatalf("%s output:\n%s", format, out)
		}
	}
}

// captureStderr runs f with os.Stderr redirected and returns what it
// printed there (the -stats / -progress channel).
func captureStderr(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := f()
	w.Close()
	os.Stderr = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

// The disk-cache acceptance bar, end to end through the CLI: a repeated
// run with -cache-dir must serve every solve from disk and still render a
// byte-identical table.
func TestSweepCacheDirByteIdenticalAndWarm(t *testing.T) {
	args := []string{"-dim", "p,rho", "-from", "0.3,0", "-to", "0.9,1",
		"-steps", "1,2", "-scheme", "CMFSD"}
	plain, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	cached := append(args, "-cache-dir", t.TempDir())
	cold, err := capture(t, func() error { return run(cached) })
	if err != nil {
		t.Fatal(err)
	}
	if cold != plain {
		t.Fatalf("cold cached output differs:\n%s\nvs\n%s", cold, plain)
	}
	var warm string
	stderr, err := captureStderr(t, func() error {
		var runErr error
		warm, runErr = capture(t, func() error { return run(append(cached, "-stats")) })
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm != plain {
		t.Fatalf("warm cached output differs:\n%s\nvs\n%s", warm, plain)
	}
	// Every cell decoded from disk, none re-solved.
	if !strings.Contains(stderr, "; 0 solved") || !strings.Contains(stderr, "disk") {
		t.Fatalf("warm -stats report:\n%s", stderr)
	}
	if !strings.Contains(stderr, "sweep: phase setup") {
		t.Fatalf("phase timings missing:\n%s", stderr)
	}
}

func TestSweepStatsWithoutCache(t *testing.T) {
	stderr, err := captureStderr(t, func() error {
		_, runErr := capture(t, func() error {
			return run([]string{"-dim", "rho", "-from", "0", "-to", "1",
				"-steps", "2", "-scheme", "MTSD", "-stats"})
		})
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	// ρ sweep under MTSD collapses to one solve; no disk tier configured.
	if !strings.Contains(stderr, "memory 2 hits / 1 misses") || strings.Contains(stderr, "disk") {
		t.Fatalf("-stats report:\n%s", stderr)
	}
}

func TestSweepRejectsUnwritableCacheDir(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-steps", "1", "-cache-dir", "/dev/null/nope"})
	}); err == nil {
		t.Fatal("unwritable cache dir accepted")
	}
}

func TestSweepPruneFlagRejections(t *testing.T) {
	cases := [][]string{
		{"-cache-prune-age", "1h"},                      // prune without -cache-dir
		{"-cache-prune-size", "1000"},                   // prune without -cache-dir
		{"-cache-prune-age", "-1h", "-cache-dir", "x"},  // negative age
		{"-cache-prune-size", "-1", "-cache-dir", "x"},  // negative size
		{"-cache-prune-age", "soon", "-cache-dir", "x"}, // unparsable duration
	}
	for i, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Fatalf("case %d accepted: %v", i, args)
		}
	}
}

// TestSweepCachePruneAndUsage drives the prune flags end to end: populate
// the disk cache, verify -stats reports its usage, prune it empty, and
// check the next run re-solves from scratch.
func TestSweepCachePruneAndUsage(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-dim", "rho", "-from", "0", "-to", "1",
		"-steps", "2", "-scheme", "CMFSD", "-cache-dir", dir}
	if _, err := capture(t, func() error { return run(args) }); err != nil {
		t.Fatal(err)
	}
	// -stats reports the populated store's footprint.
	stderr, err := captureStderr(t, func() error {
		_, runErr := capture(t, func() error { return run(append(args, "-stats")) })
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "disk cache: 3 entries") {
		t.Fatalf("usage line missing from -stats:\n%s", stderr)
	}
	// Prune everything (a 1-byte budget evicts every entry), then confirm
	// the store re-solves: 0 disk hits, 3 stores.
	stderr, err = captureStderr(t, func() error {
		_, runErr := capture(t, func() error {
			return run(append(args, "-cache-prune-size", "1", "-stats"))
		})
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "cache prune: removed 3 entries") {
		t.Fatalf("prune summary missing:\n%s", stderr)
	}
	if !strings.Contains(stderr, "disk 0 hits / 3 misses (3 stored") {
		t.Fatalf("post-prune stats:\n%s", stderr)
	}
	// Age-based prune with a generous window keeps everything.
	stderr, err = captureStderr(t, func() error {
		_, runErr := capture(t, func() error {
			return run(append(args, "-cache-prune-age", "24h", "-stats"))
		})
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "removed 0 entries") || !strings.Contains(stderr, "disk 3 hits / 0 misses") {
		t.Fatalf("age prune kept nothing or cache went cold:\n%s", stderr)
	}
}
