package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The observability golden guard: full instrumentation (-metrics-out,
// -trace-out, -stats) must not perturb the table on stdout by a single
// byte — metrics go only to their own sinks and stderr.
func TestSweepObservabilityGoldenStdout(t *testing.T) {
	args := []string{"-dim", "p,rho", "-from", "0.3,0", "-to", "0.9,1",
		"-steps", "1,2", "-scheme", "CMFSD"}
	plain, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.json")
	instrumented := append(args, "-metrics-out", metrics, "-trace-out", trace, "-stats")
	var observed string
	if _, err := captureStderr(t, func() error {
		var runErr error
		observed, runErr = capture(t, func() error { return run(instrumented) })
		return runErr
	}); err != nil {
		t.Fatal(err)
	}
	if observed != plain {
		t.Fatalf("observability perturbed stdout:\n%s\nvs\n%s", observed, plain)
	}

	// The metrics snapshot must be valid JSON carrying the acceptance
	// metrics: cache hit rates, cell latency quantiles, utilization.
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]uint64  `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count     uint64             `json:"count"`
			Quantiles map[string]float64 `json:"quantiles"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot not JSON: %v\n%s", err, raw)
	}
	if snap.Counters["solvecache_misses_total"] == 0 {
		t.Fatalf("no solve-cache activity in snapshot:\n%s", raw)
	}
	h, ok := snap.Histograms["runner_cell_seconds"]
	if !ok || h.Count != 6 {
		t.Fatalf("runner_cell_seconds missing or wrong count:\n%s", raw)
	}
	if _, ok := h.Quantiles["p99"]; !ok {
		t.Fatalf("latency quantiles missing:\n%s", raw)
	}
	if _, ok := snap.Gauges["runner_worker_utilization"]; !ok {
		t.Fatalf("worker utilization missing:\n%s", raw)
	}

	// The trace stream must be a valid Chrome trace: a JSON array of
	// complete ("ph":"X") events, one per cell.
	rawTrace, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(rawTrace, &events); err != nil {
		t.Fatalf("trace not a JSON event array: %v\n%s", err, rawTrace)
	}
	cells := 0
	for _, e := range events {
		if e.Ph != "X" {
			t.Fatalf("unexpected phase %q in trace", e.Ph)
		}
		if e.Name == "cell" {
			cells++
		}
	}
	if cells != 6 {
		t.Fatalf("trace has %d cell spans, want 6", cells)
	}
}

// -progress must report throughput and ETA derived from the registry's
// completed-cell counter.
func TestSweepProgressRate(t *testing.T) {
	stderr, err := captureStderr(t, func() error {
		_, runErr := capture(t, func() error {
			return run([]string{"-dim", "p,rho", "-from", "0.3,0", "-to", "0.9,1",
				"-steps", "1,3", "-scheme", "CMFSD", "-workers", "1", "-progress"})
		})
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "8/8") {
		t.Fatalf("final progress line missing:\n%s", stderr)
	}
	if !strings.Contains(stderr, "cells/s eta ") {
		t.Fatalf("throughput/ETA missing from -progress:\n%s", stderr)
	}
}

func TestSweepRejectsBadObsSinks(t *testing.T) {
	cases := [][]string{
		{"-steps", "1", "-metrics-out", "/dev/null/nope"},
		{"-steps", "1", "-trace-out", "/dev/null/nope"},
		{"-steps", "1", "-pprof", "256.0.0.1:0"},
	}
	for i, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Fatalf("case %d accepted: %v", i, args)
		}
	}
}
