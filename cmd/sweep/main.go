// Command sweep runs parameter sweeps of the fluid models: pick one or
// more dimensions (p, rho, k, mu, gamma, eta, lambda0, theta), a range
// per dimension, and a scheme, and it prints the average online and
// download time per file over the full grid. This generalizes the paper's figures
// to arbitrary axes — e.g. how the CMFSD gain varies with swarm scale or
// with seed patience 1/γ — and, with several dimensions, regenerates whole
// surfaces like Figure 4(a) in one call.
//
// Grid cells are independent steady-state solves: they fan out over a
// bounded worker pool (-workers, default all cores) and the output is
// byte-identical at every worker count. Cells whose parameters coincide
// (for instance a ρ axis under a scheme that ignores ρ) are solved once.
//
// Usage:
//
//	sweep -dim rho -from 0 -to 1 -steps 10 -scheme CMFSD -p 0.9
//	sweep -dim p,rho -from 0.1,0 -to 1,1 -steps 9,10 -workers 8 -scheme CMFSD
//	sweep -dim p,rho -steps 9,10 -cache-dir ~/.cache/mfdl -stats
//
// -from, -to and -steps accept either a single value (applied to every
// dimension) or one comma-separated value per dimension.
//
// With -cache-dir the solves persist across invocations: a repeated run
// over the same grid decodes every cell from disk instead of re-solving
// it, with byte-identical output. -stats reports on stderr how many cells
// collapsed into shared (memory) or pre-computed (disk) solves, the disk
// store's entry count and size, and the wall-clock spent in each phase
// (setup, solve, render). -cache-prune-age and -cache-prune-size trim the
// disk store before the sweep: by entry age, or down to a byte budget
// evicting least-recently-used entries first (reads refresh recency).
//
// With -checkpoint-dir every completed cell is also flushed to disk as
// the sweep runs: a run killed mid-grid (crash, SIGKILL, power loss)
// resumes on the next invocation from the completed cells and emits the
// byte-identical final table. -retries re-attempts panicking cells a
// bounded number of times before giving up on the run.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"

	"flag"

	"mfdl/internal/experiments"
	"mfdl/internal/fabric"
	"mfdl/internal/fluid"
	"mfdl/internal/gridflag"
	"mfdl/internal/obs"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/scheme"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// formats lists the table formats the -format flag accepts.
var formats = map[string]bool{
	"": true, "ascii": true, "csv": true, "tsv": true, "markdown": true, "md": true,
}

func run(args []string) error {
	start := time.Now()
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		dim       = fs.String("dim", "p", "swept dimensions (comma-separated): p, rho, k, mu, gamma, eta, lambda0, theta")
		from      = fs.String("from", "0.05", "sweep start, one value or one per dimension")
		to        = fs.String("to", "1", "sweep end, one value or one per dimension")
		steps     = fs.String("steps", "10", "sweep intervals, one value or one per dimension")
		schemeF   = fs.String("scheme", "CMFSD", "scheme: MTCD, MTSD, MFCD, CMFSD")
		k         = fs.Int("k", 10, "number of files K")
		mu        = fs.Float64("mu", 0.02, "upload bandwidth μ")
		eta       = fs.Float64("eta", 0.5, "sharing efficiency η")
		gamma     = fs.Float64("gamma", 0.05, "seed departure rate γ")
		lambda0   = fs.Float64("lambda0", 1, "visiting rate λ₀")
		p         = fs.Float64("p", 0.9, "file correlation p")
		rho       = fs.Float64("rho", 0, "CMFSD allocation ratio ρ")
		theta     = fs.Float64("theta", 0, "downloader abort rate θ (0 = paper's churn-free model)")
		workers   = fs.Int("workers", 0, "worker pool size (0 = all cores)")
		retries   = fs.Int("retries", 0, "re-attempts for a panicking cell before the run fails")
		ckptDir   = fs.String("checkpoint-dir", "", "flush completed cells here so a killed run resumes (empty = off)")
		verbose   = fs.Bool("progress", false, "report per-cell progress on stderr")
		format    = fs.String("format", "ascii", "output format: ascii, csv, tsv, or markdown")
		cacheDir  = fs.String("cache-dir", "", "persistent solve-cache directory shared across runs (empty = in-memory only)")
		pruneAge  = fs.Duration("cache-prune-age", 0, "evict cache entries unused for longer than this before the sweep (0 = off; requires -cache-dir)")
		pruneSize = fs.Int64("cache-prune-size", 0, "evict least-recently-used cache entries down to this many bytes before the sweep (0 = off; requires -cache-dir)")
		stats     = fs.Bool("stats", false, "print cache hit rates, disk usage and per-phase wall-clock on stderr")
		fabricAdr = fs.String("fabric", "", "run the sweep through an in-process fabric coordinator bound to this address (e.g. 127.0.0.1:0) with -workers HTTP workers; output is byte-identical to a local run")
	)
	var ofl obs.Flags
	ofl.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	sc, err := scheme.Parse(*schemeF)
	if err != nil {
		return err
	}
	if !formats[*format] {
		return fmt.Errorf("unknown format %q (want ascii, csv, tsv, or markdown)", *format)
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", *workers)
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be >= 0, got %d", *retries)
	}
	if *pruneAge < 0 {
		return fmt.Errorf("-cache-prune-age must be >= 0, got %v", *pruneAge)
	}
	if *pruneSize < 0 {
		return fmt.Errorf("-cache-prune-size must be >= 0, got %d", *pruneSize)
	}
	if (*pruneAge > 0 || *pruneSize > 0) && *cacheDir == "" {
		return fmt.Errorf("-cache-prune-age and -cache-prune-size require -cache-dir")
	}
	if *pruneAge > 0 || *pruneSize > 0 {
		store, err := diskcache.Open(*cacheDir)
		if err != nil {
			return err
		}
		pst, err := store.Prune(diskcache.PruneOptions{MaxAge: *pruneAge, MaxBytes: *pruneSize})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep: cache prune: removed %d entries (%d bytes), kept %d (%d bytes)\n",
			pst.Removed, pst.Freed, pst.Kept, pst.Remaining)
	}

	grid, err := gridflag.Grid(*dim, *from, *to, *steps)
	if err != nil {
		return err
	}

	// A registry exists only when something will consume it (-stats and
	// -progress render from it; -metrics-out/-trace-out/-pprof export
	// it). Otherwise spec.Obs stays nil and every instrumentation site in
	// the runner and caches is on the zero-cost fast path — the table on
	// stdout is byte-identical either way.
	reg, finishObs, err := ofl.Setup(*stats || *verbose)
	if err != nil {
		return err
	}
	spec := experiments.SweepSpec{
		Config: experiments.Config{
			Params:  fluid.Params{Mu: *mu, Eta: *eta, Gamma: *gamma},
			K:       *k,
			Lambda0: *lambda0,
		},
		P: *p, Rho: *rho, Theta: *theta,
		Scheme:        sc,
		Grid:          grid,
		Options:       experiments.Options{Workers: *workers, Obs: reg},
		Retries:       *retries,
		CacheDir:      *cacheDir,
		CheckpointDir: *ckptDir,
	}
	if *verbose {
		// Progress renders from the registry's completed-cell counter:
		// cells/sec over the solve phase so far, and the ETA for the rest
		// of the grid at that rate.
		total := grid.Size()
		completed := reg.Counter("runner_cells_completed_total")
		failed := reg.Counter("runner_cells_failed_total")
		solveStart := time.Now()
		first := true
		spec.Hooks = runner.Hooks{OnCell: func(pt runner.Point, err error) {
			if first {
				solveStart = time.Now()
				first = false
			}
			done := int(completed.Value() + failed.Value())
			line := fmt.Sprintf("sweep: %d/%d (%s)", done, total, pt.Label())
			if elapsed := time.Since(solveStart).Seconds(); elapsed > 0 && done > 1 {
				rate := float64(done) / elapsed
				eta := time.Duration(float64(total-done) / rate * float64(time.Second))
				line += fmt.Sprintf(" %.1f cells/s eta %s", rate, eta.Round(10*time.Millisecond))
			}
			fmt.Fprintln(os.Stderr, line)
		}}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	phase := reg.Gauge // nil-safe; three samples land as sweep_phase_seconds{phase=...}
	setup := time.Since(start)
	var res *experiments.SweepResult
	if *fabricAdr != "" {
		res, err = runFabric(ctx, spec, *fabricAdr, *workers)
	} else {
		res, err = experiments.Sweep(ctx, spec)
	}
	if err != nil {
		return err
	}
	solve := time.Since(start) - setup
	if err := res.Table().Write(os.Stdout, *format); err != nil {
		return err
	}
	render := time.Since(start) - setup - solve
	phase("sweep_phase_seconds", obs.L("phase", "setup")).Set(setup.Seconds())
	phase("sweep_phase_seconds", obs.L("phase", "solve")).Set(solve.Seconds())
	phase("sweep_phase_seconds", obs.L("phase", "render")).Set(render.Seconds())
	if reg != nil {
		snapshotDerived(reg, len(res.Cells), *cacheDir)
	}
	if *stats || *verbose {
		printStats(os.Stderr, reg, *cacheDir)
	}
	return finishObs()
}

// runFabric executes the sweep through the distributed fabric entirely
// in-process: a coordinator HTTP server bound to addr, plus `workers`
// (default all cores) HTTP worker loops against it. The cells come back
// through the coordinator's checkpoint store (spec.CheckpointDir, or a
// private temp dir), so the final table is byte-identical to a local run —
// -fabric exists to exercise exactly that equivalence from the shell.
func runFabric(ctx context.Context, spec experiments.SweepSpec, addr string, workers int) (*experiments.SweepResult, error) {
	dir := spec.CheckpointDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "sweep-fabric-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	store, err := diskcache.OpenCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	coord, err := fabric.NewCoordinator(spec.JobSpec(), store, fabric.CoordinatorOptions{
		Obs: spec.Options.Obs,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "sweep: fabric coordinator on http://%s\n", ln.Addr())
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	url := "http://" + ln.Addr().String()
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			errs <- fabric.Work(ctx, url, fabric.WorkerOptions{
				Name: fmt.Sprintf("local-%d", i),
			})
		}(i)
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	cells, err := coord.Result(ctx)
	if err != nil {
		return nil, err
	}
	return &experiments.SweepResult{Spec: spec, Cells: cells}, nil
}

// snapshotDerived folds end-of-run derived values into the registry so
// both -stats and the -metrics-out snapshot render from one source:
// the cell count, the cache hit ratio and the disk store's footprint.
func snapshotDerived(reg *obs.Registry, cells int, cacheDir string) {
	reg.Gauge("sweep_cells").Set(float64(cells))
	hits := reg.Counter("solvecache_hits_total").Value()
	misses := reg.Counter("solvecache_misses_total").Value()
	if total := hits + misses; total > 0 {
		reg.Gauge("solvecache_hit_ratio").Set(float64(hits) / float64(total))
	}
	if cacheDir != "" {
		if store, err := diskcache.Open(cacheDir); err == nil {
			if entries, bytes, err := store.Usage(); err == nil {
				reg.Gauge("diskcache_entries").Set(float64(entries))
				reg.Gauge("diskcache_bytes").Set(float64(bytes))
			}
		}
	}
}

// printStats renders the -stats report from the registry: how the
// grid's cells collapsed into shared and pre-computed solves, the disk
// store's footprint, and where the wall-clock went.
func printStats(w *os.File, reg *obs.Registry, cacheDir string) {
	count := func(name string) uint64 { return reg.Counter(name).Value() }
	fmt.Fprintf(w, "sweep: %d cells: memory %d hits / %d misses",
		int(reg.Gauge("sweep_cells").Value()),
		count("solvecache_hits_total"), count("solvecache_misses_total"))
	if cacheDir != "" {
		fmt.Fprintf(w, "; disk %d hits / %d misses (%d stored, %d corrupt, %d evicted)",
			count("diskcache_hits_total"), count("diskcache_misses_total"),
			count("diskcache_stores_total"), count("diskcache_corrupt_total"),
			count("diskcache_evicted_total"))
	}
	fmt.Fprintf(w, "; %d solved\n", count("solvecache_solves_total"))
	if cacheDir != "" {
		fmt.Fprintf(w, "sweep: disk cache: %d entries, %d bytes\n",
			int(reg.Gauge("diskcache_entries").Value()), int64(reg.Gauge("diskcache_bytes").Value()))
	}
	ms := func(phase string) float64 {
		return reg.Gauge("sweep_phase_seconds", obs.L("phase", phase)).Value() * 1000
	}
	fmt.Fprintf(w, "sweep: phase setup %.1fms | solve %.1fms | render %.1fms\n",
		ms("setup"), ms("solve"), ms("render"))
}
