// Command sweep runs one-dimensional parameter sweeps of the fluid models:
// pick a dimension (p, rho, k, mu, gamma, eta, or lambda0), a range, and a
// scheme, and it prints the average online time per file across the sweep.
// This generalizes the paper's figures to arbitrary axes — e.g. how the
// CMFSD gain varies with swarm scale or with seed patience 1/γ.
//
// Usage:
//
//	sweep -dim rho -from 0 -to 1 -steps 10 -scheme CMFSD -p 0.9
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mfdl/internal/core"
	"mfdl/internal/fluid"
	"mfdl/internal/table"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		dim     = fs.String("dim", "p", "swept dimension: p, rho, k, mu, gamma, eta, lambda0")
		from    = fs.Float64("from", 0.05, "sweep start")
		to      = fs.Float64("to", 1, "sweep end")
		steps   = fs.Int("steps", 10, "number of sweep intervals")
		schemeF = fs.String("scheme", "CMFSD", "scheme: MTCD, MTSD, MFCD, CMFSD")
		k       = fs.Int("k", 10, "number of files K")
		mu      = fs.Float64("mu", 0.02, "upload bandwidth μ")
		eta     = fs.Float64("eta", 0.5, "sharing efficiency η")
		gamma   = fs.Float64("gamma", 0.05, "seed departure rate γ")
		lambda0 = fs.Float64("lambda0", 1, "visiting rate λ₀")
		p       = fs.Float64("p", 0.9, "file correlation p")
		rho     = fs.Float64("rho", 0, "CMFSD allocation ratio ρ")
		format  = fs.String("format", "ascii", "output format: ascii, csv, tsv, or markdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	scheme, err := core.ParseScheme(*schemeF)
	if err != nil {
		return err
	}
	if *steps < 1 {
		return fmt.Errorf("steps must be >= 1")
	}
	tb := table.New(
		fmt.Sprintf("Sweep of %s for %s (K=%d, p=%g, ρ=%g, μ=%g, η=%g, γ=%g)",
			*dim, scheme, *k, *p, *rho, *mu, *eta, *gamma),
		*dim, "avg online/file", "avg download/file")
	for i := 0; i <= *steps; i++ {
		v := *from + (*to-*from)*float64(i)/float64(*steps)
		cfg := core.Config{
			Params:  fluid.Params{Mu: *mu, Eta: *eta, Gamma: *gamma},
			K:       *k,
			Lambda0: *lambda0,
			P:       *p,
		}
		rhoV := *rho
		switch *dim {
		case "p":
			cfg.P = v
		case "rho":
			rhoV = v
		case "k":
			cfg.K = int(math.Round(v))
		case "mu":
			cfg.Mu = v
		case "gamma":
			cfg.Gamma = v
		case "eta":
			cfg.Eta = v
		case "lambda0":
			cfg.Lambda0 = v
		default:
			return fmt.Errorf("unknown dimension %q", *dim)
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return fmt.Errorf("%s=%g: %w", *dim, v, err)
		}
		res, err := sys.Evaluate(scheme, core.WithRho(rhoV))
		if err != nil {
			return fmt.Errorf("%s=%g: %w", *dim, v, err)
		}
		tb.MustAddRow(table.Fmt(v),
			table.Fmt(res.AvgOnlinePerFile()), table.Fmt(res.AvgDownloadPerFile()))
	}
	return tb.Write(os.Stdout, *format)
}
