// Command mfdl regenerates the tables and figures of "Analyzing Multiple
// File Downloading in BitTorrent" (ICPP 2006) from the fluid models.
//
// Usage:
//
//	mfdl [flags] <subcommand>
//
// Subcommands:
//
//	fig2       Figure 2: avg online time per file vs correlation, MTCD vs MTSD
//	fig3       Figure 3: per-class times at p = 0.1 and p = 1.0
//	fig4a      Figure 4(a): CMFSD avg online time per file over a p × ρ grid
//	fig4b      Figure 4(b): per-class times at p = 0.9, CMFSD vs MFCD
//	fig4c      Figure 4(c): per-class times at p = 0.1, CMFSD vs MFCD
//	validate   K = 1 degeneracy check against the Qiu–Srikant closed form
//	stability  spectral abscissas of the fluid fixed points
//	crossover  per-class correlation where MTCD stops beating MTSD
//	eta        η-sensitivity ablation of the MTCD curve
//	cheating   fluid mixed-population sweep: obedient vs ρ=1 cheaters
//	kscaling   collaboration gain vs number of files K
//	simvalidate  fluid-vs-event-simulation check (-replicas, -seed; not in 'all')
//	churn      download time under deterministic chaos: downloader aborts and
//	           virtual-seed quits, fluid vs simulation (-chaos-seed,
//	           -abort-rate, -quit-rate; not in 'all')
//	report     write every artifact above to -out as CSV files
//	params     print the Table-1 parameter glossary
//	all        everything above in paper order (except simvalidate and churn)
//
// Flags select the model parameters (defaults are the paper's) and the
// output format (ascii, csv, tsv, markdown). simvalidate and churn are the
// simulator-backed subcommands: they run -replicas independently seeded
// replicas per row on the replica engine and, with -replicas > 1, add a
// ±95% confidence column. churn additionally injects a fault plan derived
// from -chaos-seed: the same seed reproduces the same aborts and seed
// quits byte-for-byte at any -workers count.
//
// With -sample-dir every simulated replica persists in a keyed sample
// store: a later run with a larger -replicas replays the stored samples
// and simulates only the new ones. -ci-target switches to sequential
// stopping — each row's replica count grows (bounded by -replicas-max)
// until the 95% confidence half-width of -ci-metric reaches the target.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"mfdl/internal/experiments"
	"mfdl/internal/fluid"
	"mfdl/internal/obs"
	"mfdl/internal/runner"
	"mfdl/internal/runner/diskcache"
	"mfdl/internal/table"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mfdl:", err)
		os.Exit(1)
	}
}

// parseRates parses a comma-separated list of non-negative finite rates;
// an empty string means the axis is skipped.
func parseRates(name, s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: %w", name, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("-%s: rate %v must be finite and >= 0", name, v)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("mfdl", flag.ContinueOnError)
	var (
		k        = fs.Int("k", 10, "number of files K")
		mu       = fs.Float64("mu", 0.02, "upload bandwidth μ")
		eta      = fs.Float64("eta", 0.5, "sharing efficiency η")
		gamma    = fs.Float64("gamma", 0.05, "seed departure rate γ")
		lambda0  = fs.Float64("lambda0", 1, "web-server visiting rate λ₀")
		steps    = fs.Int("steps", 20, "grid resolution for swept axes")
		seed     = fs.Uint64("seed", 7, "RNG seed for the simulator subcommands (base of the replica seed derivation)")
		replicas = fs.Int("replicas", 1, "independently seeded simulation replicas per simulator row (>= 1)")
		workers  = fs.Int("workers", 0, "replica worker pool size for the simulator subcommands (0 = all cores)")
		samples  = fs.String("sample-dir", "", "keyed replica-sample store for the simulator subcommands: re-runs with more replicas replay stored samples instead of resampling (empty = off)")
		smplAge  = fs.Duration("sample-prune-age", 0, "evict stored samples unused for longer than this before the run (0 = off; requires -sample-dir)")
		smplSize = fs.Int64("sample-prune-size", 0, "evict least-recently-used stored samples down to this many bytes before the run (0 = off; requires -sample-dir)")
		ciTarget = fs.Float64("ci-target", 0, "sequential stopping: grow each simulator row's replicas until the 95% CI half-width of -ci-metric reaches this (0 = fixed -replicas)")
		ciMetric = fs.String("ci-metric", "", "stopping metric for -ci-target (default: the subcommand's headline metric)")
		replMax  = fs.Int("replicas-max", 64, "replica growth bound per row under -ci-target")
		chaos    = fs.Uint64("chaos-seed", 42, "fault-plan seed for 'churn' (same seed ⇒ identical chaos)")
		abortsFl = fs.String("abort-rate", "0,0.0005,0.001,0.002", "comma-separated downloader abort rates θ for 'churn' (empty skips the axis)")
		quitsFl  = fs.String("quit-rate", "0.02,0.05,0.1", "comma-separated virtual-seed quit rates for 'churn' (empty skips the axis)")
		format   = fs.String("format", "ascii", "output format: ascii, csv, tsv, or markdown")
		out      = fs.String("out", "artifacts", "output directory for the 'report' subcommand")
		cacheDir = fs.String("cache-dir", "", "persistent solve-cache directory shared across runs (empty = in-memory only)")
		stats    = fs.Bool("stats", false, "print per-phase wall-clock and solve-cache hit rates on stderr")
	)
	var ofl obs.Flags
	ofl.Register(fs)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: mfdl [flags] fig2|fig3|fig4a|fig4b|fig4c|validate|stability|crossover|eta|cheating|kscaling|simvalidate|churn|report|params|all")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one subcommand, got %d", fs.NArg())
	}
	// Strict flag validation, in cmd/sweep's rejection style: model floats
	// must be finite, the replica count positive, the worker count
	// non-negative and the format known.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"mu", *mu}, {"eta", *eta}, {"gamma", *gamma}, {"lambda0", *lambda0},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("-%s: value %v is not finite", f.name, f.v)
		}
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1, got %d", *replicas)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if math.IsNaN(*ciTarget) || math.IsInf(*ciTarget, 0) || *ciTarget < 0 {
		return fmt.Errorf("-ci-target must be finite and >= 0, got %v", *ciTarget)
	}
	if *replMax < 1 {
		return fmt.Errorf("-replicas-max must be >= 1, got %d", *replMax)
	}
	if *smplAge < 0 {
		return fmt.Errorf("-sample-prune-age must be >= 0, got %v", *smplAge)
	}
	if *smplSize < 0 {
		return fmt.Errorf("-sample-prune-size must be >= 0, got %d", *smplSize)
	}
	if (*smplAge > 0 || *smplSize > 0) && *samples == "" {
		return fmt.Errorf("-sample-prune-age and -sample-prune-size require -sample-dir")
	}
	switch *format {
	case "ascii", "csv", "tsv", "markdown", "md":
	default:
		return fmt.Errorf("unknown format %q (want ascii, csv, tsv, or markdown)", *format)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// A registry exists only when something will consume it: -stats
	// renders from it, -metrics-out/-trace-out/-pprof export it.
	// Otherwise it stays nil and instrumentation is on the zero-cost fast
	// path; the tables on stdout are byte-identical either way.
	reg, finishObs, err := ofl.Setup(*stats)
	if err != nil {
		return err
	}
	// One solve cache for the whole invocation: 'all' and 'report' reuse
	// solves across figures, and -cache-dir extends the reuse across
	// processes.
	cache := runner.NewCache()
	if *cacheDir != "" {
		disk, err := diskcache.Open(*cacheDir)
		if err != nil {
			return err
		}
		cache = runner.NewDiskCache(disk)
	}
	cache.WithObs(reg)
	// One sample store for the simulator subcommands: a later run with a
	// larger -replicas (or a tighter -ci-target) replays every sample this
	// run stored instead of resampling it.
	var sampleStore *diskcache.SampleStore
	if *samples != "" {
		sampleStore, err = diskcache.OpenSamples(*samples)
		if err != nil {
			return err
		}
		sampleStore.WithObs(reg)
		if *smplAge > 0 || *smplSize > 0 {
			pst, err := sampleStore.Prune(diskcache.PruneOptions{MaxAge: *smplAge, MaxBytes: *smplSize})
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "mfdl: sample prune: removed %d samples (%d bytes), kept %d (%d bytes)\n",
				pst.Removed, pst.Freed, pst.Kept, pst.Remaining)
		}
	}
	simOpts := experiments.Options{
		Seed: *seed, Replicas: *replicas, Workers: *workers, Obs: reg,
		Samples: sampleStore, CITarget: *ciTarget, CIMetric: *ciMetric,
		ReplicasMax: *replMax,
	}
	cfg := experiments.Config{
		Params:  fluid.Params{Mu: *mu, Eta: *eta, Gamma: *gamma},
		K:       *k,
		Lambda0: *lambda0,
		Cache:   cache,
	}
	emit := func(tb *table.Table) error {
		if err := tb.Write(os.Stdout, *format); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}
	cmds := map[string]func() error{
		"fig2": func() error {
			res, err := experiments.Fig2(cfg, experiments.PGrid(0, 1, *steps))
			if err != nil {
				return err
			}
			return emit(res.Table())
		},
		"fig3": func() error {
			for _, p := range []float64{0.1, 1.0} {
				res, err := experiments.Fig3(cfg, p)
				if err != nil {
					return err
				}
				if err := emit(res.Table()); err != nil {
					return err
				}
			}
			return nil
		},
		"fig4a": func() error {
			pGrid := experiments.PGrid(0.1, 1, *steps/2)
			rhoGrid := experiments.PGrid(0, 1, 10)
			res, err := experiments.Fig4A(ctx, cfg, pGrid, rhoGrid)
			if err != nil {
				return err
			}
			return emit(res.Table())
		},
		"fig4b": func() error {
			res, err := experiments.Fig4BC(cfg, 0.9, 0.1, 0.9)
			if err != nil {
				return err
			}
			return emit(res.Table())
		},
		"fig4c": func() error {
			res, err := experiments.Fig4BC(cfg, 0.1, 0.1, 0.9)
			if err != nil {
				return err
			}
			return emit(res.Table())
		},
		"validate": func() error {
			res, err := experiments.Validate(cfg)
			if err != nil {
				return err
			}
			return emit(res.Table())
		},
		"stability": func() error {
			_, tb, err := experiments.StabilityTable(cfg)
			if err != nil {
				return err
			}
			return emit(tb)
		},
		"crossover": func() error {
			res, err := experiments.Crossover(cfg)
			if err != nil {
				return err
			}
			return emit(res.Table())
		},
		"eta": func() error {
			res, err := experiments.EtaAblation(ctx, cfg,
				[]float64{0.25, 0.5, 0.75, 1.0}, experiments.PGrid(0, 1, *steps))
			if err != nil {
				return err
			}
			return emit(res.Table())
		},
		"kscaling": func() error {
			res, err := experiments.KScaling(cfg, 0.9, []int{1, 2, 3, 5, 8, 10, 12, 15, 20})
			if err != nil {
				return err
			}
			return emit(res.Table())
		},
		"cheating": func() error {
			res, err := experiments.CheatingSweep(cfg, 0.9, 0,
				[]float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1})
			if err != nil {
				return err
			}
			return emit(res.Table())
		},
		"simvalidate": func() error {
			set := experiments.SimSettings{
				Params:  cfg.Params,
				K:       cfg.K,
				Lambda0: cfg.Lambda0,
				Horizon: 4000, Warmup: 800,
				Options: simOpts,
			}
			res, err := experiments.SimValidate(ctx, set, []float64{0.5, 0.9})
			if err != nil {
				return err
			}
			return emit(res.Table())
		},
		"churn": func() error {
			thetas, err := parseRates("abort-rate", *abortsFl)
			if err != nil {
				return err
			}
			quits, err := parseRates("quit-rate", *quitsFl)
			if err != nil {
				return err
			}
			if len(thetas) == 0 && len(quits) == 0 {
				return fmt.Errorf("churn: both -abort-rate and -quit-rate are empty, nothing to sweep")
			}
			set := experiments.SimSettings{
				Params:  cfg.Params,
				K:       cfg.K,
				Lambda0: cfg.Lambda0,
				Horizon: 4000, Warmup: 800,
				Options: simOpts,
			}
			res, err := experiments.ChurnSweep(ctx, set, 0.9, *chaos, thetas, quits)
			if err != nil {
				return err
			}
			for _, tb := range res.Tables() {
				if err := emit(tb); err != nil {
					return err
				}
			}
			return nil
		},
		"report": func() error {
			files, err := experiments.Report(ctx, cfg, *out)
			if err != nil {
				return err
			}
			for _, f := range files {
				fmt.Println(f)
			}
			return nil
		},
		"params": func() error {
			tb := table.New("Table 1: parameters of the BitTorrent fluid model",
				"symbol", "meaning", "paper value")
			tb.MustAddRow("K", "number of files in the system", fmt.Sprintf("%d", cfg.K))
			tb.MustAddRow("λ₀", "web-server visiting rate", table.Fmt(cfg.Lambda0))
			tb.MustAddRow("p", "per-file request probability (file correlation)", "swept")
			tb.MustAddRow("μ", "peer upload bandwidth", table.Fmt(cfg.Mu))
			tb.MustAddRow("η", "downloader sharing efficiency", table.Fmt(cfg.Eta))
			tb.MustAddRow("γ", "seed departure rate", table.Fmt(cfg.Gamma))
			tb.MustAddRow("ρ", "CMFSD bandwidth allocation ratio", "swept")
			return emit(tb)
		},
	}
	// runPhase times one subcommand into the registry's per-phase gauge;
	// with -stats each phase's wall-clock also lands on stderr, rendered
	// from that gauge.
	runPhase := func(sub string) error {
		var start time.Time
		var sp obs.Span
		if reg != nil {
			start = time.Now()
			sp = reg.StartSpan("phase", obs.L("phase", sub))
		}
		err := cmds[sub]()
		if reg != nil {
			reg.Gauge("mfdl_phase_seconds", obs.L("phase", sub)).Set(time.Since(start).Seconds())
			sp.End()
		}
		if *stats {
			ms := reg.Gauge("mfdl_phase_seconds", obs.L("phase", sub)).Value() * 1000
			fmt.Fprintf(os.Stderr, "mfdl: phase %-9s %8.1fms\n", sub, ms)
		}
		return err
	}
	// report renders the cache summary from the registry's solvecache_* /
	// diskcache_* counters (mirrored by the cache tiers via WithObs).
	report := func() {
		if !*stats {
			return
		}
		count := func(name string) uint64 { return reg.Counter(name).Value() }
		fmt.Fprintf(os.Stderr, "mfdl: solve cache: memory %d hits / %d misses",
			count("solvecache_hits_total"), count("solvecache_misses_total"))
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "; disk %d hits / %d misses (%d stored, %d corrupt, %d evicted)",
				count("diskcache_hits_total"), count("diskcache_misses_total"),
				count("diskcache_stores_total"), count("diskcache_corrupt_total"),
				count("diskcache_evicted_total"))
		}
		fmt.Fprintf(os.Stderr, "; %d solved\n", count("solvecache_solves_total"))
	}
	// The subcommands run inside a closure so the metrics snapshot and
	// trace stream are flushed on every return path.
	runErr := func() error {
		name := fs.Arg(0)
		if name == "all" {
			for _, sub := range []string{"params", "validate", "fig2", "fig3", "fig4a", "fig4b", "fig4c", "crossover", "stability", "eta", "cheating", "kscaling"} {
				if err := runPhase(sub); err != nil {
					return fmt.Errorf("%s: %w", sub, err)
				}
			}
			report()
			return nil
		}
		if _, ok := cmds[name]; !ok {
			fs.Usage()
			return fmt.Errorf("unknown subcommand %q", name)
		}
		if err := runPhase(name); err != nil {
			return err
		}
		report()
		return nil
	}()
	if ferr := finishObs(); runErr == nil {
		runErr = ferr
	}
	return runErr
}
