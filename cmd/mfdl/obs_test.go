package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStderr runs f with os.Stderr redirected and returns what it
// printed there (the -stats channel).
func captureStderr(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := f()
	w.Close()
	os.Stderr = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

// The observability golden guard for mfdl: enabling every sink must not
// change the figures on stdout by a single byte.
func TestMfdlObservabilityGoldenStdout(t *testing.T) {
	args := []string{"-steps", "4", "fig2"}
	plain, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	metrics := filepath.Join(t.TempDir(), "metrics.json")
	var observed string
	stderr, err := captureStderr(t, func() error {
		var runErr error
		observed, runErr = capture(t, func() error {
			return run(append([]string{"-metrics-out", metrics, "-stats"}, args...))
		})
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed != plain {
		t.Fatalf("observability perturbed stdout:\n%s\nvs\n%s", observed, plain)
	}
	if !strings.Contains(stderr, "mfdl: phase fig2") || !strings.Contains(stderr, "solve cache: memory") {
		t.Fatalf("-stats report:\n%s", stderr)
	}
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]uint64  `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics snapshot not JSON: %v\n%s", err, raw)
	}
	if snap.Counters["solvecache_solves_total"] == 0 {
		t.Fatalf("no solves recorded:\n%s", raw)
	}
	if _, ok := snap.Gauges[`mfdl_phase_seconds{phase="fig2"}`]; !ok {
		t.Fatalf("phase gauge missing:\n%s", raw)
	}
}
