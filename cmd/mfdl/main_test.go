package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestRejectsMissingSubcommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no subcommand accepted")
	}
}

func TestRejectsUnknownSubcommand(t *testing.T) {
	if err := run([]string{"fig9"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestRejectsExtraArgs(t *testing.T) {
	if err := run([]string{"fig2", "fig3"}); err == nil {
		t.Fatal("two subcommands accepted")
	}
}

func TestRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-mu", "banana", "fig2"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestFig2Output(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-steps", "4", "fig2"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "98") {
		t.Fatalf("fig2 output wrong:\n%s", out)
	}
}

func TestFig2CSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-steps", "2", "-format", "csv", "fig2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "p,MTCD,MTSD") {
		t.Fatalf("csv header missing:\n%s", out)
	}
}

func TestValidateSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"validate"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Qiu") {
		t.Fatalf("validate output:\n%s", out)
	}
}

func TestParamsSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"params"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []string{"K", "μ", "η", "γ", "ρ"} {
		if !strings.Contains(out, sym) {
			t.Fatalf("params missing %s:\n%s", sym, out)
		}
	}
}

func TestCrossoverSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"crossover"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "none in (0,1)") {
		t.Fatalf("crossover output:\n%s", out)
	}
}

func TestCheatingSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"cheating"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cheater fraction") {
		t.Fatalf("cheating output:\n%s", out)
	}
}

func TestBadParamsSurface(t *testing.T) {
	// γ < μ breaks the closed forms — the error must reach the caller.
	if err := run([]string{"-gamma", "0.01", "fig2"}); err == nil {
		t.Fatal("γ<μ accepted")
	}
}

func TestFig3AndFig4Subcommands(t *testing.T) {
	for _, sub := range []string{"fig3", "fig4b", "fig4c", "stability"} {
		out, err := capture(t, func() error { return run([]string{sub}) })
		if err != nil {
			t.Fatalf("%s: %v", sub, err)
		}
		if len(out) == 0 {
			t.Fatalf("%s produced nothing", sub)
		}
	}
}

func TestKScalingSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"kscaling"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "gain") {
		t.Fatalf("kscaling output:\n%s", out)
	}
}

func TestReportSubcommand(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error { return run([]string{"-out", dir, "report"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig2.csv") || !strings.Contains(out, "kscaling.csv") {
		t.Fatalf("report listing:\n%s", out)
	}
}

// A second invocation with the same -cache-dir must reuse every solve
// from disk (0 solved) and print byte-identical tables.
func TestCacheDirAcrossInvocations(t *testing.T) {
	dir := t.TempDir()
	first, err := capture(t, func() error { return run([]string{"-cache-dir", dir, "fig4b"}) })
	if err != nil {
		t.Fatal(err)
	}
	oldErr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	second, runErr := capture(t, func() error { return run([]string{"-cache-dir", dir, "-stats", "fig4b"}) })
	w.Close()
	os.Stderr = oldErr
	if runErr != nil {
		t.Fatal(runErr)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if second != first {
		t.Fatalf("cached rerun differs:\n%s\nvs\n%s", second, first)
	}
	stderr := sb.String()
	if !strings.Contains(stderr, "; 0 solved") || !strings.Contains(stderr, "mfdl: phase fig4b") {
		t.Fatalf("-stats report:\n%s", stderr)
	}
}

func TestRejectsUnwritableCacheDir(t *testing.T) {
	if err := run([]string{"-cache-dir", "/dev/null/nope", "params"}); err == nil {
		t.Fatal("unwritable cache dir accepted")
	}
}

func TestRejectsInvalidReplicaFlags(t *testing.T) {
	cases := [][]string{
		{"-replicas", "0", "validate"},  // replicas must be >= 1
		{"-replicas", "-2", "validate"}, // negative replicas
		{"-workers", "-1", "validate"},  // negative workers
		{"-mu", "NaN", "validate"},      // non-finite model parameter
		{"-gamma", "-Inf", "validate"},  // non-finite model parameter
		{"-format", "pdf", "validate"},  // unknown format
	}
	for i, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Fatalf("case %d accepted: %v", i, args)
		}
	}
}
