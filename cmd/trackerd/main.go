// Command trackerd runs the paper's server–torrent architecture (Section
// 3.1, Figure 1) as a standalone HTTP service: a BitTorrent tracker
// (/announce, /scrape) plus the indexing web server (/index, /torrent/<hex>).
//
// On startup it publishes a demo multi-file torrent (a K-episode "season",
// synthetic deterministic content) so the service is immediately
// exercisable:
//
//	trackerd -addr :8080 -k 10 &
//	curl 'http://localhost:8080/index'
//	curl 'http://localhost:8080/announce?info_hash=<hex>&peer_id=me&port=6881&left=1&event=started'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"mfdl/internal/metainfo"
	"mfdl/internal/rng"
	"mfdl/internal/tracker"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trackerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trackerd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		k        = fs.Int("k", 10, "files in the demo torrent")
		fileSize = fs.Int64("filesize", 1<<16, "bytes per demo file")
		pieceLen = fs.Int64("piecelen", 1<<14, "piece length")
		seed     = fs.Uint64("seed", 1, "content RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := tracker.NewRegistry(*seed)
	m, err := DemoTorrent(*k, *fileSize, *pieceLen, *seed)
	if err != nil {
		return err
	}
	h, err := reg.Publish(m)
	if err != nil {
		return err
	}
	log.Printf("published %q (%d files) info-hash %s", m.Info.Name, len(m.Info.Files), tracker.HexHash(h))
	log.Printf("listening on %s (endpoints: /announce /scrape /index /torrent/<hex>)", *addr)
	return http.ListenAndServe(*addr, tracker.Handler(reg))
}

// DemoTorrent builds a deterministic K-file multi-file torrent ("season"
// with K episodes of synthetic content).
func DemoTorrent(k int, fileSize, pieceLen int64, seed uint64) (*metainfo.MetaInfo, error) {
	src := rng.New(seed)
	data := make([]byte, int(fileSize)*k)
	for i := range data {
		data[i] = byte(src.Uint32())
	}
	files := make([]metainfo.FileEntry, k)
	for i := range files {
		files[i] = metainfo.FileEntry{
			Path:   fmt.Sprintf("season/e%02d.mkv", i+1),
			Length: fileSize,
		}
	}
	return metainfo.Build("season", "/announce", pieceLen, files, metainfo.BytesSource(data))
}
