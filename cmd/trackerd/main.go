// Command trackerd runs the paper's server–torrent architecture (Section
// 3.1, Figure 1) as a standalone HTTP service: a BitTorrent tracker
// (/announce, /scrape) plus the indexing web server (/index, /torrent/<hex>).
//
// On startup it publishes a demo multi-file torrent (a K-episode "season",
// synthetic deterministic content) so the service is immediately
// exercisable:
//
//	trackerd -addr :8080 -k 10 &
//	curl 'http://localhost:8080/index'
//	curl 'http://localhost:8080/announce?info_hash=<hex>&peer_id=me&port=6881&left=1&event=started'
//	curl 'http://localhost:8080/metrics'
//
// The service is observable by default: /metrics serves per-endpoint
// request counters and latency histograms in Prometheus text format, and
// /debug/pprof serves the standard Go profiles. On SIGINT or SIGTERM the
// server shuts down gracefully — in-flight announces drain (bounded by
// -shutdown-timeout) before the listener closes — and a final metrics
// snapshot is logged to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mfdl/internal/metainfo"
	"mfdl/internal/obs"
	"mfdl/internal/rng"
	"mfdl/internal/tracker"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trackerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trackerd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		k          = fs.Int("k", 10, "files in the demo torrent")
		fileSize   = fs.Int64("filesize", 1<<16, "bytes per demo file")
		pieceLen   = fs.Int64("piecelen", 1<<14, "piece length")
		seed       = fs.Uint64("seed", 1, "content RNG seed")
		drain      = fs.Duration("shutdown-timeout", 5*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
		metricsOut = fs.String("metrics-out", "", "also write the final JSON metrics snapshot to this file on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *drain <= 0 {
		return fmt.Errorf("-shutdown-timeout must be > 0, got %v", *drain)
	}
	treg := tracker.NewRegistry(*seed)
	m, err := DemoTorrent(*k, *fileSize, *pieceLen, *seed)
	if err != nil {
		return err
	}
	h, err := treg.Publish(m)
	if err != nil {
		return err
	}
	ob := obs.New()
	mux := http.NewServeMux()
	mux.Handle("/", tracker.ObservedHandler(treg, ob))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("published %q (%d files) info-hash %s", m.Info.Name, len(m.Info.Files), tracker.HexHash(h))
	log.Printf("listening on %s (endpoints: /announce /scrape /index /torrent/<hex> /metrics /debug/pprof)", *addr)
	return serve(*addr, mux, ob, *drain, *metricsOut)
}

// serve runs the HTTP server until SIGINT/SIGTERM, then shuts down
// gracefully: the listener closes, in-flight requests drain for up to
// the grace period, and the final metrics snapshot is logged.
func serve(addr string, handler http.Handler, ob *obs.Registry, grace time.Duration, metricsOut string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Explicit timeouts: a client that dials and goes silent (or trickles
	// a request forever) must not pin a connection indefinitely.
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		// Listener failed before any signal (e.g. address in use).
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of draining
	log.Printf("shutting down (draining in-flight requests up to %v)", grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logFinalMetrics(ob, metricsOut)
	return shutErr
}

// logFinalMetrics writes the registry's closing snapshot: one log line
// per tracker counter, plus (optionally) the full JSON snapshot to a
// file.
func logFinalMetrics(ob *obs.Registry, metricsOut string) {
	var sb strings.Builder
	if err := ob.WritePrometheus(&sb); err == nil {
		for _, line := range strings.Split(sb.String(), "\n") {
			if strings.HasPrefix(line, "tracker_requests_total") {
				log.Printf("final metrics: %s", line)
			}
		}
	}
	if metricsOut != "" {
		out, err := os.Create(metricsOut)
		if err == nil {
			err = ob.WriteJSON(out)
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			log.Printf("metrics-out: %v", err)
		}
	}
}

// DemoTorrent builds a deterministic K-file multi-file torrent ("season"
// with K episodes of synthetic content).
func DemoTorrent(k int, fileSize, pieceLen int64, seed uint64) (*metainfo.MetaInfo, error) {
	src := rng.New(seed)
	data := make([]byte, int(fileSize)*k)
	for i := range data {
		data[i] = byte(src.Uint32())
	}
	files := make([]metainfo.FileEntry, k)
	for i := range files {
		files[i] = metainfo.FileEntry{
			Path:   fmt.Sprintf("season/e%02d.mkv", i+1),
			Length: fileSize,
		}
	}
	return metainfo.Build("season", "/announce", pieceLen, files, metainfo.BytesSource(data))
}
