package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"mfdl/internal/metainfo"
	"mfdl/internal/tracker"
)

func TestDemoTorrentShape(t *testing.T) {
	m, err := DemoTorrent(5, 4096, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Info.Files) != 5 {
		t.Fatalf("files = %d", len(m.Info.Files))
	}
	if m.Info.TotalLength() != 5*4096 {
		t.Fatalf("total = %d", m.Info.TotalLength())
	}
	if m.Info.NumPieces() != 20 {
		t.Fatalf("pieces = %d", m.Info.NumPieces())
	}
	if err := m.Info.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDemoTorrentDeterministic(t *testing.T) {
	a, err := DemoTorrent(3, 1024, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DemoTorrent(3, 1024, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := a.Info.InfoHash()
	hb, _ := b.Info.InfoHash()
	if ha != hb {
		t.Fatal("same seed produced different torrents")
	}
	c, err := DemoTorrent(3, 1024, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	hc, _ := c.Info.InfoHash()
	if hc == ha {
		t.Fatal("different seeds produced identical content")
	}
}

func TestServiceEndToEnd(t *testing.T) {
	// Same wiring as main(), against a test listener.
	reg := tracker.NewRegistry(1)
	m, err := DemoTorrent(4, 2048, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := reg.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(tracker.Handler(reg))
	defer srv.Close()

	q := url.Values{}
	q.Set("info_hash", string(h[:]))
	q.Set("peer_id", "itest")
	q.Set("port", "6881")
	q.Set("left", "8192")
	q.Set("event", "started")
	resp, err := http.Get(srv.URL + "/announce?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "failure") {
		t.Fatalf("announce failed: %s", body)
	}

	resp, err = http.Get(srv.URL + "/torrent/" + tracker.HexHash(h))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	back, err := metainfo.Unmarshal(body)
	if err != nil {
		t.Fatal(err)
	}
	if back.Info.Name != "season" || len(back.Info.Files) != 4 {
		t.Fatalf("served torrent wrong: %+v", back.Info)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-k", "banana"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
