// Command benchjson converts `go test -bench` output on stdin into the
// repository's benchmark-trajectory JSON (BENCH_PR<N>.json, see ROADMAP.md
// and the README's benchmark workflow). It parses the standard benchmark
// result lines — including custom metrics like peers/sec — and writes one
// JSON document with a "current" section holding the fresh numbers.
//
// If the output file already exists, its "baseline" section is preserved:
// the baseline is the pre-refactor measurement a PR's speedup claim is
// judged against, and regenerating the current numbers must not erase it.
//
// With -compare FILE it runs in regression-check mode instead: fresh
// benchmark output on stdin is compared against the trajectory recorded
// in FILE, and the process exits non-zero when any shared benchmark got
// more than -tolerance (default 10%) worse — throughput metrics like
// cells/sec dropping, or ns/op rising, relative to the recorded numbers.
//
// Usage:
//
//	go test -run '^$' -bench 'Step' -benchtime 20x ./internal/swarm/ |
//	    benchjson -o BENCH_PR6.json -label "SoA hot paths"
//
//	go test -run '^$' -bench 'SimReplicaThroughput' -benchtime 5x ./internal/fabric/ |
//	    benchjson -compare BENCH_PR8.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name         string  `json:"name"`
	Iterations   int64   `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp  float64 `json:"allocs_per_op,omitempty"`
	PeersPerSec  float64 `json:"peers_per_sec,omitempty"`
	CellsPerSec  float64 `json:"cells_per_sec,omitempty"`
	MergesPerSec float64 `json:"merges_per_sec,omitempty"`
}

// throughput returns the entry's higher-is-better rate metric, if any.
func (e Entry) throughput() (float64, string) {
	switch {
	case e.PeersPerSec > 0:
		return e.PeersPerSec, "peers/sec"
	case e.CellsPerSec > 0:
		return e.CellsPerSec, "cells/sec"
	case e.MergesPerSec > 0:
		return e.MergesPerSec, "merges/sec"
	}
	return 0, ""
}

// Section is one labeled measurement set.
type Section struct {
	Label   string  `json:"label"`
	Entries []Entry `json:"entries"`
}

// Doc is the on-disk BENCH_PR<N>.json shape.
type Doc struct {
	// Baseline is the pre-change measurement the PR is judged against;
	// preserved across regenerations once recorded.
	Baseline *Section `json:"baseline,omitempty"`
	// Current is the measurement of the checked-out tree.
	Current Section `json:"current"`
}

// benchLine matches `BenchmarkName-P  N  value unit  value unit ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(lines *bufio.Scanner) ([]Entry, error) {
	var out []Entry
	for lines.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(lines.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", lines.Text(), err)
		}
		e := Entry{Name: strings.TrimPrefix(m[1], "Benchmark"), Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value in %q: %w", lines.Text(), err)
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "peers/sec":
				e.PeersPerSec = v
			case "cells/sec":
				e.CellsPerSec = v
			case "merges/sec":
				e.MergesPerSec = v
			}
		}
		out = append(out, e)
	}
	return out, lines.Err()
}

func run(out, label string) error {
	entries, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	doc := Doc{Current: Section{Label: label, Entries: entries}}
	if prev, err := os.ReadFile(out); err == nil {
		var old Doc
		if err := json.Unmarshal(prev, &old); err != nil {
			return fmt.Errorf("benchjson: existing %s is not trajectory JSON: %w", out, err)
		}
		doc.Baseline = old.Baseline
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d entries to %s\n", len(entries), out)
	return nil
}

// errRegression marks a compare run that parsed cleanly but found at
// least one benchmark beyond tolerance.
var errRegression = fmt.Errorf("benchjson: benchmark regression detected")

// compare checks fresh stdin results against the trajectory recorded in
// ref. For every benchmark present in both, the primary metric — the
// custom throughput rate when both sides report one, ns/op otherwise —
// must not be worse than the recorded value by more than tolerance.
// Benchmarks on only one side are reported but never fail the check, so
// adding a benchmark does not break older trajectory files.
func compare(in io.Reader, ref string, tolerance float64) error {
	fresh, err := parse(bufio.NewScanner(in))
	if err != nil {
		return err
	}
	if len(fresh) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	buf, err := os.ReadFile(ref)
	if err != nil {
		return err
	}
	var doc Doc
	if err := json.Unmarshal(buf, &doc); err != nil {
		return fmt.Errorf("benchjson: %s is not trajectory JSON: %w", ref, err)
	}
	recorded := make(map[string]Entry, len(doc.Current.Entries))
	for _, e := range doc.Current.Entries {
		recorded[e.Name] = e
	}
	matched, regressed := 0, 0
	for _, e := range fresh {
		old, ok := recorded[e.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: %-40s not in %s, skipped\n", e.Name, ref)
			continue
		}
		// Prefer the rate metric: it is what the trajectory tracks, and
		// for end-to-end benchmarks ns/op includes fixed setup cost.
		metric, rate := "ns/op", false
		newV, oldV := e.NsPerOp, old.NsPerOp
		if nv, nu := e.throughput(); nu != "" {
			if ov, ou := old.throughput(); ou == nu {
				metric, rate = nu, true
				newV, oldV = nv, ov
			}
		}
		// A recorded metric that is not > 0 cannot anchor a relative
		// change: the division yields NaN/Inf, and NaN > tolerance is
		// false, so a real regression would silently pass. Flag and skip.
		if !(oldV > 0) {
			fmt.Fprintf(os.Stderr, "benchjson: %-40s recorded %s %v is not > 0, SKIPPED\n",
				e.Name, metric, oldV)
			continue
		}
		matched++
		worse := (newV - oldV) / oldV
		if rate {
			worse = (oldV - newV) / oldV
		}
		status := "ok"
		if worse > tolerance {
			status = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-40s %s %12.4g -> %12.4g (%+.1f%%, %s)\n",
			e.Name, metric, oldV, newV, -worse*100, status)
	}
	if matched == 0 {
		return fmt.Errorf("benchjson: no benchmark on stdin matches %s", ref)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d of %d benchmarks regressed more than %.0f%% vs %s\n",
			regressed, matched, tolerance*100, ref)
		return errRegression
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks within %.0f%% of %s\n",
		matched, tolerance*100, ref)
	return nil
}

func main() {
	out := flag.String("o", "", "output JSON file (required unless -compare)")
	label := flag.String("label", "working tree", "label for the current measurement set")
	ref := flag.String("compare", "", "regression-check stdin against this trajectory JSON instead of writing")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional slowdown in -compare mode")
	flag.Parse()
	if *ref != "" {
		if err := compare(os.Stdin, *ref, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*out, *label); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
