// Command benchjson converts `go test -bench` output on stdin into the
// repository's benchmark-trajectory JSON (BENCH_PR<N>.json, see ROADMAP.md
// and the README's benchmark workflow). It parses the standard benchmark
// result lines — including custom metrics like peers/sec — and writes one
// JSON document with a "current" section holding the fresh numbers.
//
// If the output file already exists, its "baseline" section is preserved:
// the baseline is the pre-refactor measurement a PR's speedup claim is
// judged against, and regenerating the current numbers must not erase it.
//
// Usage:
//
//	go test -run '^$' -bench 'Step' -benchtime 20x ./internal/swarm/ |
//	    benchjson -o BENCH_PR6.json -label "SoA hot paths"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	PeersPerSec float64 `json:"peers_per_sec,omitempty"`
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
}

// Section is one labeled measurement set.
type Section struct {
	Label   string  `json:"label"`
	Entries []Entry `json:"entries"`
}

// Doc is the on-disk BENCH_PR<N>.json shape.
type Doc struct {
	// Baseline is the pre-change measurement the PR is judged against;
	// preserved across regenerations once recorded.
	Baseline *Section `json:"baseline,omitempty"`
	// Current is the measurement of the checked-out tree.
	Current Section `json:"current"`
}

// benchLine matches `BenchmarkName-P  N  value unit  value unit ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(lines *bufio.Scanner) ([]Entry, error) {
	var out []Entry
	for lines.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(lines.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", lines.Text(), err)
		}
		e := Entry{Name: strings.TrimPrefix(m[1], "Benchmark"), Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value in %q: %w", lines.Text(), err)
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "peers/sec":
				e.PeersPerSec = v
			case "cells/sec":
				e.CellsPerSec = v
			}
		}
		out = append(out, e)
	}
	return out, lines.Err()
}

func run(out, label string) error {
	entries, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	doc := Doc{Current: Section{Label: label, Entries: entries}}
	if prev, err := os.ReadFile(out); err == nil {
		var old Doc
		if err := json.Unmarshal(prev, &old); err != nil {
			return fmt.Errorf("benchjson: existing %s is not trajectory JSON: %w", out, err)
		}
		doc.Baseline = old.Baseline
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d entries to %s\n", len(entries), out)
	return nil
}

func main() {
	out := flag.String("o", "", "output JSON file (required)")
	label := flag.String("label", "working tree", "label for the current measurement set")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*out, *label); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
