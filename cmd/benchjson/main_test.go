package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: mfdl/internal/swarm
BenchmarkSwarmStep/n=1000-8         	      20	   1054588 ns/op	    948238 peers/sec	   11030 B/op	     153 allocs/op
BenchmarkSwarmStep/n=10000-8        	      20	  11726369 ns/op	    852779 peers/sec	  106588 B/op	    1367 allocs/op
BenchmarkEventsimStep/CMFSD/n=1000-8	     200	      7790 ns/op	 128368634 peers/sec	       0 B/op	       0 allocs/op
BenchmarkFabricThroughput/workers=4-8   	       5	  41253000 ns/op	     388.2 cells/sec
PASS
ok  	mfdl/internal/swarm	2.5s
`
	entries, err := parse(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("parsed %d entries, want 4", len(entries))
	}
	first := entries[0]
	if first.Name != "SwarmStep/n=1000" || first.Iterations != 20 ||
		first.NsPerOp != 1054588 || first.PeersPerSec != 948238 ||
		first.BytesPerOp != 11030 || first.AllocsPerOp != 153 {
		t.Errorf("first entry parsed wrong: %+v", first)
	}
	if entries[2].Name != "EventsimStep/CMFSD/n=1000" || entries[2].AllocsPerOp != 0 {
		t.Errorf("third entry parsed wrong: %+v", entries[2])
	}
	if entries[3].Name != "FabricThroughput/workers=4" || entries[3].CellsPerSec != 388.2 {
		t.Errorf("fabric entry parsed wrong: %+v", entries[3])
	}
}

func TestParseRejectsGarbageValues(t *testing.T) {
	_, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkX-8 10 nan!! ns/op\n")))
	if err == nil {
		t.Fatal("parse accepted an unparseable value")
	}
}

func TestCompareSkipsZeroBaseline(t *testing.T) {
	ref := filepath.Join(t.TempDir(), "bench.json")
	doc := Doc{Current: Section{Label: "ref", Entries: []Entry{
		{Name: "Zero", NsPerOp: 0},
		{Name: "Good", NsPerOp: 100},
	}}}
	buf, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ref, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	// A zero recorded metric cannot anchor a relative change — the entry
	// is skipped instead of producing a NaN that silently passes.
	in := strings.NewReader("BenchmarkZero-8 10 5000 ns/op\nBenchmarkGood-8 10 105 ns/op\n")
	if err := compare(in, ref, 0.10); err != nil {
		t.Fatalf("compare with zero-baseline entry: %v", err)
	}
	// The valid entry still gates regressions.
	in = strings.NewReader("BenchmarkZero-8 10 5000 ns/op\nBenchmarkGood-8 10 200 ns/op\n")
	if err := compare(in, ref, 0.10); err == nil {
		t.Fatal("regression of the valid entry went undetected")
	}
	// When every matching entry has a zero baseline the run fails loudly
	// instead of passing vacuously.
	in = strings.NewReader("BenchmarkZero-8 10 5000 ns/op\n")
	if err := compare(in, ref, 0.10); err == nil {
		t.Fatal("all-zero-baseline compare passed vacuously")
	}
}
