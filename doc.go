// Package mfdl reproduces "Analyzing Multiple File Downloading in
// BitTorrent" (Tian, Wu, Ng — ICPP 2006) as a Go library: fluid models for
// the four multiple-file downloading schemes (MTCD, MTSD, MFCD and the
// paper's proposed CMFSD), the numerical machinery to solve them (hand-
// rolled RK4/RK45, linear algebra for stability analysis), two BitTorrent
// simulators that validate the models at the flow and chunk level, and the
// Adapt mechanism for distributed tuning of the collaboration ratio ρ.
//
// Two packages tie the stack together: internal/scheme is the unified
// factory — scheme.New dispatches a Scheme name plus fluid/correlation
// parameters to the right model and returns a uniform Evaluate surface —
// and internal/runner is the parallel execution engine every grid study
// runs on: N-dimensional grids over a bounded worker pool, per-cell
// deterministic RNG streams (results are bit-identical at any worker
// count), context cancellation with first-error propagation, and a
// two-tier solve cache: an in-process memoization tier that collapses
// coinciding steady-state solves with single-flight semantics, and an
// optional persistent tier (internal/runner/diskcache) that serializes
// results under a versioned, tolerance-aware key fingerprint so repeated
// invocations skip identical cells entirely (the -cache-dir flag on
// cmd/sweep and cmd/mfdl).
//
// The experiments API is context-first: grid studies (Fig4A, EtaAblation,
// Report, SwarmCompare, Sweep) and every simulator-backed experiment
// (SimValidate, AdaptSweep, AdaptParams, Transient, Hetero) take a
// context.Context and fan out over the runner, so long surfaces are
// cancellable and parallel while rendering byte-identical tables at any
// worker count.
//
// Simulator-backed numbers run through internal/replica, the replica
// engine: each simulation cell fans out into R independently seeded
// replicas (SimSettings.Replicas, or -replicas on cmd/btsim and
// cmd/mfdl) and every simulated metric reduces to mean / 95% confidence
// interval / min / max. Replica seeds are a pure function of (base seed,
// cell, replica) with replica 0 pinned to the base seed, so R = 1
// reproduces the unreplicated tables byte-for-byte — a promise pinned by
// golden files — and growing R extends a smaller study rather than
// resampling it.
//
// The root package only anchors the module; all functionality lives under
// internal/ (see README.md for the map) and is exercised by the binaries in
// cmd/, the runnable examples in examples/, and the per-figure benchmarks
// in bench_test.go.
package mfdl
