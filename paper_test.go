// paper_test asserts the paper's headline conclusions end to end through
// the public facade — each test reads like one sentence of the paper's
// abstract or conclusion, so a reviewer can map claims to checks directly.
package mfdl_test

import (
	"math"
	"testing"

	"mfdl/internal/core"
	"mfdl/internal/fluid"
)

func paperSystem(t *testing.T, p float64) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Params: fluid.PaperParams, K: 10, Lambda0: 1, P: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func avg(t *testing.T, sys *core.System, s core.Scheme, opts ...core.Option) float64 {
	t.Helper()
	res, err := sys.Evaluate(s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res.AvgOnlinePerFile()
}

// "The performance of MTCD is worse than MTSD, especially when the files
// requested are highly interest-correlated." (paper §4.2.1)
func TestClaimMTCDWorseThanMTSDUnderCorrelation(t *testing.T) {
	low := paperSystem(t, 0.05)
	high := paperSystem(t, 1.0)
	gapLow := avg(t, low, core.MTCD) - avg(t, low, core.MTSD)
	gapHigh := avg(t, high, core.MTCD) - avg(t, high, core.MTSD)
	if gapLow < 0 {
		t.Fatalf("MTCD beat MTSD at low correlation by %v", -gapLow)
	}
	if gapHigh <= gapLow {
		t.Fatalf("penalty should grow with correlation: %v at p=0.05, %v at p=1", gapLow, gapHigh)
	}
	if math.Abs(gapHigh-18) > 0.1 { // 98 − 80
		t.Fatalf("p=1 gap %v, closed form says 18", gapHigh)
	}
}

// "The scheme of multi-file torrent concurrent downloading … is
// inefficient" / MFCD ≡ MTCD in the fluid model (paper §3.4).
func TestClaimMFCDEquivalentToMTCD(t *testing.T) {
	sys := paperSystem(t, 0.7)
	if d := math.Abs(avg(t, sys, core.MFCD) - avg(t, sys, core.MTCD)); d > 1e-9 {
		t.Fatalf("MFCD and MTCD differ by %v in the fluid model", d)
	}
}

// "We show via numerical analysis that the download performance could be
// improved by collaboration among the peers in different subtorrents."
// (abstract) — and the improvement is "more obvious for systems with a
// high file correlation p" (§4.2.2).
func TestClaimCollaborationImproves(t *testing.T) {
	gains := map[float64]float64{}
	for _, p := range []float64{0.3, 0.9} {
		sys := paperSystem(t, p)
		mfcd := avg(t, sys, core.MFCD)
		collab := avg(t, sys, core.CMFSD, core.WithRho(0))
		if collab >= mfcd {
			t.Fatalf("p=%v: CMFSD %v not better than MFCD %v", p, collab, mfcd)
		}
		gains[p] = 1 - collab/mfcd
	}
	if gains[0.9] <= gains[0.3] {
		t.Fatalf("gain should grow with correlation: %v vs %v", gains[0.3], gains[0.9])
	}
	if gains[0.9] < 0.4 {
		t.Fatalf("headline gain at p=0.9 is %v, paper shows ≈47%%", gains[0.9])
	}
}

// "Setting ρ to 0.0 will have the best system performance" (§4.2.2).
func TestClaimRhoZeroOptimal(t *testing.T) {
	sys := paperSystem(t, 0.9)
	best := avg(t, sys, core.CMFSD, core.WithRho(0))
	for _, rho := range []float64{0.25, 0.5, 0.75, 1} {
		if v := avg(t, sys, core.CMFSD, core.WithRho(rho)); v < best-1e-6 {
			t.Fatalf("ρ=%v (%v) beat ρ=0 (%v)", rho, v, best)
		}
	}
}

// "For the extreme case when peers do not allocate any bandwidth for the
// virtual seeds (ρ = 1), the system performs as in MFCD" (§4.2.2).
func TestClaimRhoOneIsMFCD(t *testing.T) {
	sys := paperSystem(t, 0.9)
	rho1 := avg(t, sys, core.CMFSD, core.WithRho(1))
	mfcd := avg(t, sys, core.MFCD)
	if math.Abs(rho1-mfcd) > 0.01*mfcd {
		t.Fatalf("CMFSD(ρ=1) %v vs MFCD %v", rho1, mfcd)
	}
}

// "Peers requesting only one file download faster than peers requesting
// multiple files, and this unfairness is getting more obvious under the
// condition that the value of ρ is large and the file correlation is low"
// (§4.2.2).
func TestClaimUnfairnessAtLowCorrelation(t *testing.T) {
	unfairness := func(p, rho float64) float64 {
		sys := paperSystem(t, p)
		res, err := sys.Evaluate(core.CMFSD, core.WithRho(rho))
		if err != nil {
			t.Fatal(err)
		}
		c1, _ := res.Class(1)
		c10, _ := res.Class(10)
		return c10.DownloadPerFile() - c1.DownloadPerFile()
	}
	lowP := unfairness(0.1, 0.9)
	if lowP <= 0 {
		t.Fatalf("no class-1 advantage at p=0.1, ρ=0.9: %v", lowP)
	}
	// More obvious than at high correlation with the same ρ.
	if highP := unfairness(0.9, 0.9); highP >= lowP {
		t.Fatalf("unfairness should shrink with correlation: %v vs %v", highP, lowP)
	}
}
